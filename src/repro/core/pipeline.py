"""The unified extraction pipeline: resolve → reroute → group → dedicate
→ price → execute.

UGache's premise (§5) is that extraction is *the* hot path, so this module
gives it one explicit shape.  A batch flows through six stages, each a
free function that any layer can call on its own:

1. **resolve** — bulk location lookup: keys → source per key (the §4
   hashtable semantics, served from the cache's dense ``source_map``);
2. **reroute** — fault/exclusion handling: replace unusable sources
   (down GPUs, partitioned links, stale/corrupt slots, breaker-opened
   sources) with the cheapest surviving replica, host last;
3. **group** — per-source batching: positions, keys and slot offsets of
   each source's share (Figure 8's grouped layout);
4. **dedicate** — the §5.3 core split over the sources actually present,
   re-normalized when the topology model and the location table disagree;
5. **price** — the factored timing model under the current health view —
   the *only* pricing point: the extractor, the batch engine, the event
   simulators and the serving runtime all price a demand through
   :func:`price_demand`, so a plan costs the same no matter who asks;
6. **execute** — gather the actual values through the cache stores.

A seventh stage runs *ahead* of the batch rather than inside it:
**prefetch** (:mod:`repro.core.prefetch`) peeks a lookahead window into
the upcoming trace, pre-stages would-be host misses into a GPU-resident
staging buffer during idle link time, and at serve time
:func:`shift_staged_demand` moves the claimed bytes off the host path
before stage 5 prices the demand.

Each stage times itself into ``pipeline.<stage>.seconds``
(:func:`repro.obs.stage_timer`), so a regression in any one stage is
visible regardless of which consumer triggered it.

:class:`~repro.core.extractor.FactoredExtractor` is the conventional
facade over stages 1–4 + 6; :func:`repro.sim.engine.simulate_batch`
consumes stage 5 for whole batches; :mod:`repro.sim.event_sim` and
:class:`~repro.serve.runtime.ServingRuntime` share the health-application
and hedge-demand helpers so their inputs match the analytic path exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.location_table import LocationTable
from repro.faults.degrade import degraded_platform, reroute_demand
from repro.faults.spec import HealthView
from repro.hardware.platform import HOST, SOURCE_DTYPE, Platform
from repro.obs import get_registry, stage_timer
from repro.sim.mechanisms import (
    GpuDemand,
    GpuExtractionReport,
    core_dedication,
    factored_extraction,
)
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # cache imports this module; type-only the other way
    from repro.core.cache import MultiGpuEmbeddingCache

logger = get_logger("core.pipeline")

__all__ = [
    "ExtractionPlan",
    "SourceGroup",
    "apply_health",
    "backing_fallback_demand",
    "dedicate",
    "execute_plan",
    "find_replicas",
    "group_by_source",
    "host_fallback_demand",
    "NetworkTier",
    "NodeReadPrice",
    "plan_extraction",
    "price_demand",
    "price_node_read",
    "renormalize_dedication",
    "reroute",
    "resolve",
    "shift_staged_demand",
    "source_class",
    "verify_resolution",
]


def source_class(source: int, dst: int, platform: Platform | None = None) -> str:
    """Label a source relative to its destination: local / host / remote.

    Backing tier 0 keeps its historical ``"host"`` label; deeper tiers
    label as their tier name when a ``platform`` is given (``"ssd"``,
    ``"cxl"``) or ``"tier<k>"`` otherwise, so per-tier metric streams
    stay distinguishable.
    """
    if source == dst:
        return "local"
    if source == HOST:
        return "host"
    if source < HOST:
        if platform is not None and platform.is_backing(source):
            return platform.tier_of(source).name
        return f"tier{-source - 1}"
    return "remote"


@dataclass(frozen=True)
class SourceGroup:
    """One source's share of a batch: which keys, read from where."""

    source: int
    #: positions of these keys within the original batch
    batch_positions: np.ndarray
    #: the entry ids to read
    keys: np.ndarray
    #: slot offsets on the source GPU (empty for backing-tier sources,
    #: where keys address the tier's resident rows directly)
    offsets: np.ndarray
    dedicated_cores: int


@dataclass(frozen=True)
class ExtractionPlan:
    """A factored plan for one GPU's batch (Figure 8's grouped layout)."""

    dst: int
    batch_size: int
    #: non-local groups first (launch order), local group last (low priority)
    groups: tuple[SourceGroup, ...]
    #: keys this plan rerouted away from their mapped source (faults)
    rerouted_keys: int = 0
    #: sources whose mapped keys had to be rerouted because the source
    #: itself failed (down GPU, partitioned link, stale/corrupt slots) —
    #: the serving layer's circuit breakers consume this.  Sources the
    #: caller *asked* to exclude are not failures and do not appear.
    failed_sources: tuple[int, ...] = ()

    @property
    def local_group(self) -> SourceGroup | None:
        for g in self.groups:
            if g.source == self.dst:
                return g
        return None

    @property
    def nonlocal_groups(self) -> tuple[SourceGroup, ...]:
        return tuple(g for g in self.groups if g.source != self.dst)

    def demand(self, entry_bytes: int) -> GpuDemand:
        return GpuDemand(
            dst=self.dst,
            volumes={
                g.source: float(len(g.keys) * entry_bytes) for g in self.groups
            },
        )


# ----------------------------------------------------------------------
# Stage 1: resolve
# ----------------------------------------------------------------------
def resolve(
    cache: "MultiGpuEmbeddingCache", dst: int, keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Bulk location lookup: ``(keys, sources)`` for one GPU's batch.

    Returns the keys normalized to a contiguous int64 array and the
    per-key source (GPU id or :data:`HOST`) from ``dst``'s location map,
    as a :data:`~repro.hardware.platform.SOURCE_DTYPE` array.
    """
    with stage_timer("resolve"):
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        return keys, cache.source_map[dst][keys]


# ----------------------------------------------------------------------
# Stage 2: reroute
# ----------------------------------------------------------------------
def find_replicas(
    cache: "MultiGpuEmbeddingCache",
    dst: int,
    keys: np.ndarray,
    health: HealthView | None,
    exclude: frozenset[int] = frozenset(),
) -> np.ndarray:
    """Cheapest surviving holder per key; the key's backing tier when
    nobody has it.

    Degraded links inflate a candidate's cost by ``1 / link_factor``
    so a half-speed replica loses to a healthy one but still beats
    the backing chain when it is the only copy left.  Sources in
    ``exclude`` (e.g. breaker-open ones) are never candidates.
    """
    platform = cache.platform
    out = cache.backing_home(keys)
    best_cost = np.full(len(keys), np.inf)
    for g in platform.gpu_ids:
        if g == dst or g in exclude:
            continue
        if health is not None and not health.source_usable(dst, g):
            continue
        if not platform.is_connected(dst, g):
            continue
        cost = platform.cost_per_byte(dst, g)
        if health is not None:
            cost /= health.link_factor(dst, g)
        if not np.isfinite(cost):
            continue
        held = cache.store(g).offset_of[keys] >= 0
        better = held & (cost < best_cost)
        out[better] = g
        best_cost[better] = cost
    return out


def reroute(
    cache: "MultiGpuEmbeddingCache",
    dst: int,
    keys: np.ndarray,
    sources: np.ndarray,
    health: HealthView | None = None,
    exclude: frozenset[int] = frozenset(),
    log=logger,
) -> tuple[np.ndarray, int, tuple[int, ...]]:
    """Replace unusable sources in ``sources``.

    A source is unusable when its id is corrupt (outside the GPU
    range), the health view marks it down or unreachable, its store
    does not actually hold the key (a stale location), or the caller
    excluded it (an open circuit breaker).  Returns
    ``(sources, rerouted, failed_sources)`` where ``failed_sources``
    attributes reroutes to the sources that *failed* (exclusions are
    deliberate, not failures).  Corrupt slots are blamed on whichever
    GPU stores actually hold the affected entries — the replicas whose
    location records went bad.
    """
    reg = get_registry()
    with stage_timer("reroute"):
        platform = cache.platform
        G = platform.num_gpus
        # Centralized validity test: GPU ids and *every* backing-tier id
        # are legitimate; only ids outside both ranges are corrupt.
        corrupt_mask = ~platform.valid_source_mask(sources)
        bad = corrupt_mask.copy()
        n_corrupt = int(bad.sum())
        n_stale = 0
        failed: set[int] = set()
        for g in range(G):
            idx = np.flatnonzero(sources == g)
            if len(idx) == 0:
                continue
            if g != dst and g in exclude:
                bad[idx] = True
                continue
            if g != dst and not platform.is_connected(dst, g):
                # A corrupt map can route over a link that does not exist;
                # treat it like a partition rather than let the simulator
                # reject the plan.
                bad[idx] = True
                n_corrupt += len(idx)
                failed.add(g)
                continue
            if health is not None and not health.source_usable(dst, g):
                bad[idx] = True
                failed.add(g)
                continue
            stale = cache.store(g).offset_of[keys[idx]] < 0
            if stale.any():
                bad[idx[stale]] = True
                n_stale += int(stale.sum())
                failed.add(g)
        if corrupt_mask.any():
            corrupt_keys = keys[corrupt_mask]
            for g in range(G):
                if (cache.store(g).offset_of[corrupt_keys] >= 0).any():
                    failed.add(g)
        if not bad.any():
            return sources, 0, ()
        bad_idx = np.flatnonzero(bad)
        replacements = find_replicas(cache, dst, keys[bad_idx], health, exclude)
        sources = sources.copy()
        sources[bad_idx] = replacements
        n = len(bad_idx)
    to_backing = int(platform.backing_mask(replacements).sum())
    reg.counter("faults.rerouted_keys", dst=dst).inc(n)
    reg.counter(
        "faults.rerouted_keys_to", target="host"
    ).inc(to_backing)
    reg.counter(
        "faults.rerouted_keys_to", target="replica"
    ).inc(len(replacements) - to_backing)
    if n_corrupt:
        reg.counter("faults.corrupt_reads").inc(n_corrupt)
    if n_stale:
        reg.counter("faults.stale_reads").inc(n_stale)
    log.debug(
        "GPU %d: rerouted %d/%d keys (%d corrupt, %d stale) around faults",
        dst, n, len(keys), n_corrupt, n_stale,
    )
    return sources, n, tuple(sorted(failed))


# ----------------------------------------------------------------------
# Stage 4: dedicate (declared before group, which consumes its output)
# ----------------------------------------------------------------------
def renormalize_dedication(
    platform: Platform,
    dst: int,
    present: list[int],
    dedication: dict[int, int],
) -> tuple[dict[int, int], list[int]]:
    """Re-normalize core shares when the map misses a present source.

    The topology model and the location table can disagree (a stale map
    after a fault, a route the solver never priced): instead of the old
    one-core floor, recompute the non-host split over *every* present
    remote source, weighting by link bandwidth (unreachable sources drain
    through the host path, so they weigh in at PCIe speed), and shrink
    proportionally so the total never exceeds the SM budget.

    Returns ``(dedication, missing)``; when nothing was missing the input
    map is returned unchanged.
    """
    backing = [s for s in present if platform.is_backing(s)]
    remotes = [s for s in present if s != dst and not platform.is_backing(s)]
    missing = [s for s in remotes if s not in dedication]
    if not missing:
        return dedication, []
    total = platform.gpu.num_cores
    backing_cores = sum(dedication.get(s, 0) for s in backing)
    budget = max(total - backing_cores, len(remotes))
    weights: dict[int, float] = {}
    for s in remotes:
        bw = platform.bandwidth(dst, s)
        weights[s] = bw if bw > 0 else platform.pcie_bandwidth
    wsum = sum(weights.values())
    out: dict[int, int] = {
        s: dedication[s] for s in backing if s in dedication
    }
    for s in remotes:
        out[s] = max(1, int(budget * weights[s] / wsum))
    while sum(v for k, v in out.items() if not platform.is_backing(k)) > budget:
        biggest = max(
            (k for k in out if not platform.is_backing(k)), key=lambda k: out[k]
        )
        if out[biggest] <= 1:
            break
        out[biggest] -= 1
    return out, missing


def dedicate(
    platform: Platform,
    dst: int,
    present: list[int],
    dedication_fn: Callable[..., dict[int, int]] | None = None,
    log=logger,
) -> dict[int, int]:
    """The §5.3 core split over the sources actually present.

    ``dedication_fn`` defaults to
    :func:`repro.sim.mechanisms.core_dedication`; the result is
    re-normalized (loudly) when it misses a present source, so the
    topology model and the location table disagreeing is survivable but
    never silent.
    """
    reg = get_registry()
    with stage_timer("dedicate"):
        fn = dedication_fn or core_dedication
        dedication = fn(platform, dst, present)
        dedication, missing = renormalize_dedication(
            platform, dst, present, dedication
        )
    if missing:
        reg.counter("extractor.plan.dedication_missing").inc(len(missing))
        reg.counter("extractor.plan.dedication_renormalized").inc()
        log.warning(
            "GPU %d batch reads from source(s) %s absent from the "
            "core-dedication map; re-normalized shares across %d "
            "remote source(s)",
            dst,
            missing,
            len([
                s for s in present if s != dst and not platform.is_backing(s)
            ]),
        )
    return dedication


# ----------------------------------------------------------------------
# Stage 3: group
# ----------------------------------------------------------------------
def group_by_source(
    cache: "MultiGpuEmbeddingCache",
    dst: int,
    keys: np.ndarray,
    sources: np.ndarray,
    dedication: dict[int, int],
) -> tuple[SourceGroup, ...]:
    """Per-source batching: split a resolved batch into source-pure groups.

    Non-local groups come first (launch order); the local group is
    appended last, scheduled at low priority to pad the ragged non-local
    finishing times (§5.3).
    """
    reg = get_registry()
    with stage_timer("group"):
        platform = cache.platform
        num_cores = platform.gpu.num_cores
        groups: list[SourceGroup] = []
        local_group: SourceGroup | None = None
        for src in (int(s) for s in np.unique(sources)):
            positions = np.flatnonzero(sources == src)
            group_keys = keys[positions]
            if platform.is_backing(src):
                offsets = np.empty(0, dtype=np.int64)
            else:
                offsets = cache.store(src).offset_of[group_keys]
            group = SourceGroup(
                source=src,
                batch_positions=positions,
                keys=group_keys,
                offsets=offsets,
                dedicated_cores=(
                    num_cores if src == dst else dedication.get(src, 1)
                ),
            )
            reg.counter(
                "extractor.plan.keys", source=source_class(src, dst, platform)
            ).inc(len(group_keys))
            reg.histogram(
                "extractor.plan.dedicated_cores",
                source=source_class(src, dst, platform),
            ).observe(group.dedicated_cores)
            if src == dst:
                local_group = group
            else:
                groups.append(group)
        # Local extraction is launched last, on a low-priority stream.
        if local_group is not None:
            groups.append(local_group)
    return tuple(groups)


# ----------------------------------------------------------------------
# Stages 1–4 composed: plan
# ----------------------------------------------------------------------
def plan_extraction(
    cache: "MultiGpuEmbeddingCache",
    dst: int,
    keys: np.ndarray,
    health: HealthView | None = None,
    exclude: frozenset[int] = frozenset(),
    dedication_fn: Callable[..., dict[int, int]] | None = None,
    log=logger,
) -> ExtractionPlan:
    """Run resolve → reroute → dedicate → group for one GPU's batch."""
    keys, sources = resolve(cache, dst, keys)
    sources, rerouted, failed_sources = reroute(
        cache, dst, keys, sources, health, exclude, log=log
    )
    platform = cache.platform
    if health is not None:
        platform = degraded_platform(platform, health)
    present = [int(s) for s in np.unique(sources)]
    dedication = dedicate(platform, dst, present, dedication_fn, log=log)
    groups = group_by_source(cache, dst, keys, sources, dedication)
    return ExtractionPlan(
        dst=dst,
        batch_size=len(keys),
        groups=groups,
        rerouted_keys=rerouted,
        failed_sources=failed_sources,
    )


# ----------------------------------------------------------------------
# Stage 5: price
# ----------------------------------------------------------------------
def price_demand(
    platform: Platform,
    demand: GpuDemand,
    health: HealthView | None = None,
    local_padding: bool = True,
) -> GpuExtractionReport:
    """The one pricing point for a factored extraction demand.

    Degrades ``platform`` under ``health`` (no-op when healthy) and runs
    the §5.3 factored timing model.  Every consumer — the extractor's
    ``price``, the batch engine, the serving runtime's request pricing and
    hedge race — calls this function, so one demand has one price.
    """
    with stage_timer("price"):
        if health is not None:
            platform = degraded_platform(platform, health)
        return factored_extraction(platform, demand, local_padding=local_padding)


@dataclass(frozen=True)
class NetworkTier:
    """The inter-node fabric as one more tier in the topology.

    Below the GPU tiers (NVLink, PCIe) sits the datacenter network: a
    front-end reading a batch from a cache node pays the node's *local*
    extraction time plus a fixed per-call latency plus the response
    payload streamed at fabric bandwidth.  Modelling it as (latency,
    bandwidth) keeps it exactly parallel to how :class:`Platform` prices
    its links, so :func:`price_node_read` composes with
    :func:`price_demand` instead of inventing a second cost model.
    """

    #: one-way per-call latency in seconds (connection + serialization).
    latency_seconds: float = 50e-6
    #: sustained fabric bandwidth in bytes/second (default ≈ 200 Gbit/s).
    bandwidth_bytes: float = 25e9

    def __post_init__(self) -> None:
        if self.latency_seconds < 0:
            raise ValueError("network latency must be non-negative")
        if self.bandwidth_bytes <= 0:
            raise ValueError("network bandwidth must be positive")

    def transfer_seconds(self, payload_bytes: float) -> float:
        """Wire time for one request/response of ``payload_bytes``."""
        return self.latency_seconds + max(0.0, payload_bytes) / self.bandwidth_bytes


@dataclass(frozen=True)
class NodeReadPrice:
    """Price of one remote node read: local extraction + wire transfer."""

    extraction_seconds: float
    transfer_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.extraction_seconds + self.transfer_seconds


def price_node_read(
    platform: Platform,
    demand: GpuDemand,
    network: NetworkTier,
    health: HealthView | None = None,
    service_factor: float = 1.0,
    local_padding: bool = True,
) -> NodeReadPrice:
    """Price a front-end read served by a remote cache node.

    The node extracts the batch with its own multi-GPU machinery — priced
    through the same :func:`price_demand` every other consumer uses — then
    streams the gathered values back over the :class:`NetworkTier`.  A
    slow node (``service_factor`` < 1, from
    :meth:`~repro.faults.spec.HealthView.node_service_factor`) stretches
    the extraction, not the wire.
    """
    if service_factor <= 0:
        raise ValueError("service factor must be positive (0 = unreachable)")
    report = price_demand(platform, demand, health, local_padding=local_padding)
    return NodeReadPrice(
        extraction_seconds=report.time / service_factor,
        transfer_seconds=network.transfer_seconds(demand.total_bytes),
    )


def shift_staged_demand(
    demand: GpuDemand,
    staged_bytes: float,
    platform: Platform | None = None,
) -> GpuDemand:
    """Move prefetch-staged bytes off the backing chain onto the local tier.

    The lookahead prefetcher (:mod:`repro.core.prefetch`) pre-stages
    upcoming backing misses into a GPU-resident staging buffer; at
    extraction time the bytes it claimed are served at local speed, not
    over PCIe/CXL/NVMe.  This re-prices a demand accordingly: up to
    ``staged_bytes`` of backing volume moves to the destination's local
    volume, draining the *most expensive* tier first when ``platform``
    names a chain (the prefetcher buys the biggest win per staged byte).
    Without a ``platform`` only the HOST volume shifts, which is the
    pre-tier behavior.  With ``staged_bytes <= 0`` (or no backing
    volume) the input demand is returned unchanged, which is what keeps
    the no-lookahead path byte-identical.
    """
    if staged_bytes <= 0:
        return demand
    if platform is None:
        tier_order = [HOST]
    else:
        # Most expensive backing tier first: cost descending.
        tier_order = sorted(
            (s for s in demand.volumes if platform.is_backing(s)),
            key=lambda s: platform.tier_of(s).cost_per_byte,
            reverse=True,
        )
    volumes = dict(demand.volumes)
    budget = float(staged_bytes)
    moved_total = 0.0
    for tier in tier_order:
        if budget <= 0:
            break
        vol = float(volumes.get(tier, 0.0))
        moved = min(vol, budget)
        if moved <= 0:
            continue
        remaining = vol - moved
        if remaining > 0:
            volumes[tier] = remaining
        else:
            volumes.pop(tier, None)
        budget -= moved
        moved_total += moved
    if moved_total <= 0:
        return demand
    volumes[demand.dst] = volumes.get(demand.dst, 0.0) + moved_total
    return GpuDemand(dst=demand.dst, volumes=volumes)


def backing_fallback_demand(
    demand: GpuDemand, tier_shares: dict[int, float] | None = None
) -> GpuDemand:
    """The hedge arm: the whole batch gathered from the backing chain.

    Shared by the serving runtime's deadline hedge and the event-driven
    :func:`~repro.sim.event_sim.simulate_hedged_extraction`, so both race
    the primary plan against an identically-shaped fallback.

    ``tier_shares`` maps backing source ids to the fraction of the entry
    universe homed on each tier (the cache's
    :meth:`~repro.core.cache.MultiGpuEmbeddingCache.backing_shares`), so
    on a deep chain the fallback correctly pays SSD prices for the
    SSD-resident share — a miss to SSD is not a miss to DRAM.  Without
    shares everything is billed to host DRAM, the single-tier behavior.
    """
    total = demand.total_bytes
    if not tier_shares:
        return GpuDemand(dst=demand.dst, volumes={HOST: total})
    norm = sum(tier_shares.values())
    if norm <= 0:
        return GpuDemand(dst=demand.dst, volumes={HOST: total})
    volumes = {
        tier: total * share / norm
        for tier, share in tier_shares.items()
        if share > 0
    }
    return GpuDemand(dst=demand.dst, volumes=volumes)


def host_fallback_demand(demand: GpuDemand) -> GpuDemand:
    """Single-tier alias of :func:`backing_fallback_demand` (kept for the
    pre-tier call sites and their golden behavior)."""
    return backing_fallback_demand(demand)


def apply_health(
    platform: Platform,
    demands: list[GpuDemand],
    health: HealthView | None,
) -> tuple[Platform, list[GpuDemand], float]:
    """Degrade a platform and reroute doomed volume for raw demands.

    The demand-level twin of :func:`reroute` (which works on keys): bytes
    still routed at a downed source or severed link move to the host path.
    Returns ``(platform, demands, moved_bytes)``; unchanged inputs when
    the view is healthy.  Both simulators (batch engine and event-driven)
    share this, so they always price the same degraded inputs.
    """
    if health is None or health.healthy:
        return platform, list(demands), 0.0
    degraded = degraded_platform(platform, health)
    rerouted = [reroute_demand(d, platform, health) for d in demands]
    moved = sum(
        r.volume(HOST) - d.volume(HOST) for d, r in zip(demands, rerouted)
    )
    return degraded, rerouted, moved


# ----------------------------------------------------------------------
# Stage 6: execute
# ----------------------------------------------------------------------
def execute_plan(
    cache: "MultiGpuEmbeddingCache", plan: ExtractionPlan
) -> tuple[np.ndarray, GpuDemand]:
    """Gather values per the plan; returns (values, priced demand)."""
    reg = get_registry()
    entry_bytes = cache.entry_bytes
    platform = cache.platform
    with stage_timer("execute"):
        values = np.empty(
            (plan.batch_size, cache.dim),
            dtype=cache.store(0).data.dtype,
        )
        for group in plan.groups:
            if platform.is_backing(group.source):
                values[group.batch_positions] = cache.backing_gather(
                    group.source, group.keys
                )
            else:
                store = cache.store(group.source)
                values[group.batch_positions] = store.data[group.offsets]
            reg.counter(
                "extractor.execute.bytes",
                source=source_class(group.source, plan.dst, platform),
            ).inc(len(group.keys) * entry_bytes)
    return values, plan.demand(entry_bytes)


# ----------------------------------------------------------------------
# Reconciliation: the hashtable vs the dense arrays
# ----------------------------------------------------------------------
def verify_resolution(cache: "MultiGpuEmbeddingCache", dst: int) -> list[str]:
    """Reconcile ``dst``'s dense routing arrays with the §4 hashtable.

    Builds the faithful :class:`~repro.core.location_table.LocationTable`
    form of ``dst``'s routing (source per entry from ``source_map``, slot
    offset from the holding store's ``offset_of``) and bulk-resolves every
    entry through it, asserting the hashtable answers match the dense
    arrays the hot path serves from.  This is the one reconciliation
    point between the two representations; the cache's integrity check
    runs it per GPU.  Entries whose dense route is already broken (a
    source that does not hold them) are skipped here — the integrity
    check reports those separately.
    """
    platform = cache.platform
    G = platform.num_gpus
    srcs = np.asarray(cache.source_map[dst])
    n = len(srcs)
    entries = np.arange(n, dtype=np.int64)
    offsets = entries.copy()  # backing convention: addressed by key
    backing = platform.backing_mask(srcs)
    consistent = backing.copy()
    for g in range(G):
        routed = np.flatnonzero(srcs == g)
        if len(routed) == 0:
            continue
        off = cache.store(g).offset_of[routed]
        held = off >= 0
        offsets[routed[held]] = off[held]
        consistent[routed[held]] = True
    # The §4 hashtable stores GPU-cached entries only — absence *means*
    # the backing chain, whichever tier an entry is homed on — so the
    # comparison runs in that normalized space.
    norm_srcs = np.where(backing, HOST, srcs).astype(srcs.dtype)
    dense_srcs = np.where(consistent, norm_srcs, HOST).astype(srcs.dtype)
    table = LocationTable.from_source_map(dense_srcs, offsets, num_sources=G)
    got_srcs, got_offsets = table.lookup_batch(entries)
    mismatched = (got_srcs != dense_srcs) | (got_offsets != offsets)
    if mismatched.any():
        return [
            f"GPU {dst}: hashtable resolution diverges from the dense "
            f"source map for {int(mismatched.sum())} entries"
        ]
    return []
