"""UGache's cache-policy solver (§6): MILP over hotness blocks.

The model is exactly the paper's §6.2 formulation, built at the granularity
of hotness blocks (§6.3) and solved with HiGHS (standing in for Gurobi):

variables (per block ``b``, destination GPU ``i``, source ``j``):
    ``a[b,i,j]`` — fraction of block ``b`` GPU ``i`` reads from ``j``;
    ``s[b,j]``  — fraction of block ``b`` stored on GPU ``j``;
    ``t[i]``    — extraction time of GPU ``i``; ``z`` — the objective.

constraints:
    Σ_j a[b,i,j] = 1                      (every entry readable somewhere)
    a[b,i,j] ≤ s[b,j]       for GPU ``j`` (you can only read what is stored)
    Σ_b size_b·s[b,j] ≤ Cap_j             (per-GPU capacity)
    t_i ≥ t^j_i = Σ_b T_{i←j}·H_b·a[b,i,j]     (ragged group bound)
    t_i ≥ Σ_j R_{i←j}·t^j_i                    (work-conservation bound)
    z ≥ t_i ;  minimize z

Host DRAM stores everything (``s`` is only defined for GPUs) and
unconnected GPU pairs contribute no ``a`` variables — the paper's
simplification for DGX-1.

Blocks are divisible groups of same-hotness entries, so the default solve
uses the continuous relaxation (fractional block storage is realized
exactly by splitting the block's entries); ``integral=True`` solves the
true binary program for small instances.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field, replace
from typing import Any, Callable

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, linprog, milp

from repro.core.blocks import BlockSet, build_blocks
from repro.core.policy import Placement, hot_replicate_warm_partition_policy
from repro.core.tiers import assign_backing_tiers
from repro.hardware.platform import Platform
from repro.obs import get_registry
from repro.sim.mechanisms import core_dedication
from repro.utils.logging import get_logger
from repro.utils.retry import Deadline, RetriesExhausted, RetryPolicy, retry_call

logger = get_logger("core.solver")


@dataclass(frozen=True)
class SolverConfig:
    """Knobs of the policy solve.

    Attributes:
        coarse_block_frac: coarse blocking cap (paper: 0.5%).
        integral: solve the true MILP (binary ``a``/``s``) instead of the
            LP relaxation.  Exponentially slower; for small instances and
            the ablation benchmark only.
        time_limit: HiGHS wall-clock budget in seconds.
        host_core_fraction_cap: cap on the share of SMs dedicated to host
            extraction when computing ``R_{i←j}`` (mirrors the Extractor).
    """

    coarse_block_frac: float = 0.005
    integral: bool = False
    time_limit: float = 60.0
    min_blocks_per_level: int | None = None
    #: HiGHS algorithm: "highs" (auto), "highs-ds" (dual simplex) or
    #: "highs-ipm" (interior point — faster on the large per-entry LPs).
    method: str = "highs"


@dataclass(frozen=True)
class SolvedPolicy:
    """Solution of one policy solve, still at block granularity."""

    platform_name: str
    blocks: BlockSet
    #: ``(B, G)`` storage fractions per block and GPU.
    storage: np.ndarray
    #: ``pairs[p] = (i, j)`` with ``j`` ∈ sources of ``i`` (HOST included).
    pairs: tuple[tuple[int, int], ...]
    #: ``(B, P)`` access fractions aligned with ``pairs``.
    access: np.ndarray
    #: estimated per-GPU extraction time (seconds/iteration).
    est_time_per_gpu: np.ndarray
    #: objective value (max over GPUs).
    est_time: float
    solve_seconds: float
    capacities: tuple[int, ...]
    num_variables: int = 0
    num_constraints: int = 0

    def realize(self) -> Placement:
        """Turn fractional block storage into a concrete per-GPU placement.

        Per block, the fractional slot quotas ``q_j = s[b,j]·size`` are
        rounded by the largest-remainder method so the block's *total*
        storage mass survives rounding — crucial for small hot blocks,
        where fractions like ``s = [0.4, 0.4, 0.4, ...]`` on a single
        ultra-hot entry mean "replicate it on ~2 GPUs to split its load",
        not "store 0.4 of an entry" (the place where a naive rounding of
        the LP relaxation diverges from the binary MILP).  Each GPU then
        takes its quota from a shared dealing pointer over the block's
        entries, which tiles partition-like solutions exactly
        (``Σ_j s = 1``), replicates replication-like ones (``s = 1``
        everywhere), and spreads partial replicas evenly in between.
        Capacity is enforced afterwards by trimming coldest-first.
        """
        num_gpus = self.storage.shape[1]
        per_gpu: list[list[np.ndarray]] = [[] for _ in range(num_gpus)]
        for b in range(self.blocks.num_blocks):
            entries = self.blocks.entries(b)
            m = len(entries)
            quotas = np.clip(self.storage[b], 0.0, 1.0) * m
            if m < num_gpus:
                # Tiny hot blocks: a fractional ``s_j`` means some GPU's
                # access variables route reads through ``j`` (the LP's
                # ``s ≥ a`` coupling), which is only realizable if ``j``
                # actually holds a copy.  Ceil instead of round — the
                # slight capacity overdraw is trimmed coldest-first below,
                # a strictly better trade than concentrating 10-20% of
                # all traffic on one holder.
                counts = np.ceil(quotas - 1e-6).astype(np.int64)
            else:
                counts = np.floor(quotas + 1e-9).astype(np.int64)
                target = min(int(round(float(quotas.sum()))), num_gpus * m)
                deficit = target - int(counts.sum())
                if deficit > 0:
                    remainders = quotas - counts
                    for j in np.argsort(-remainders):
                        if deficit <= 0:
                            break
                        if counts[j] < m:
                            counts[j] += 1
                            deficit -= 1
            pointer = 0
            for j in range(num_gpus):
                c = int(min(counts[j], m))
                if c <= 0:
                    continue
                take = (pointer + np.arange(c)) % m
                per_gpu[j].append(entries[take])
                pointer = (pointer + c) % m

        final: list[np.ndarray] = []
        for j in range(num_gpus):
            ids = (
                np.concatenate(per_gpu[j]) if per_gpu[j] else np.empty(0, dtype=np.int64)
            )
            ids = np.unique(ids)
            cap = self.capacities[j]
            if len(ids) > cap:
                # Trim coldest first: blocks are hotness-ordered, so order
                # entries by their position in the global hot order.
                rank = np.empty(self.blocks.num_entries, dtype=np.int64)
                rank[self.blocks.order] = np.arange(self.blocks.num_entries)
                ids = ids[np.argsort(rank[ids])][:cap]
            final.append(ids)
        return Placement(num_entries=self.blocks.num_entries, per_gpu=tuple(final))

    def access_volume_fractions(self, dst: int) -> dict[int, float]:
        """Expected fraction of GPU ``dst``'s accesses served per source."""
        total = self.blocks.hotness_sum.sum()
        out: dict[int, float] = {}
        for p, (i, j) in enumerate(self.pairs):
            if i != dst:
                continue
            vol = float(self.blocks.hotness_sum @ self.access[:, p])
            out[j] = out.get(j, 0.0) + (vol / total if total > 0 else 0.0)
        return out


class PolicySolveError(RuntimeError):
    """Raised when HiGHS cannot find a feasible cache policy."""


class PolicySolveTimeout(PolicySolveError):
    """The solve exhausted its wall-clock budget before reaching optimality."""


def dedication_ratios(platform: Platform, dst: int) -> dict[int, float]:
    """The Extractor's core ratios ``R_{i←j}`` used by the time model.

    Local gets ratio 1 (local extraction eventually uses every core, and
    its ``t^i_i`` is already expressed as an all-core time); non-local
    sources get their dedicated-core share of the SMs.
    """
    all_sources = platform.sources_for(dst)
    dedication = core_dedication(platform, dst, all_sources)
    total = platform.gpu.num_cores
    ratios = {dst: 1.0}
    for src in all_sources:
        if src == dst:
            continue
        ratios[src] = dedication.get(src, 1) / total
    return ratios


def solve_policy(
    platform: Platform,
    hotness: np.ndarray,
    capacity_entries: int | list[int],
    entry_bytes: int,
    config: SolverConfig | None = None,
    blocks: BlockSet | None = None,
) -> SolvedPolicy:
    """Solve the UGache cache policy for one platform and workload.

    Args:
        platform: hardware model (defines ``T_{i←j}`` and connectivity).
        hotness: per-entry expected accesses per batch per GPU.
        capacity_entries: per-GPU entry budget (scalar or per-GPU list).
        entry_bytes: bytes per embedding entry (dim × dtype size).
        config: solver knobs.
        blocks: pre-built block set (otherwise §6.3 blocking is applied).

    Returns:
        The solved (near-optimal) policy.

    Raises:
        PolicySolveError: if the LP/MILP is infeasible or the solver fails.
    """
    config = config or SolverConfig()
    hotness = np.asarray(hotness, dtype=np.float64)
    G = platform.num_gpus
    caps = (
        [int(capacity_entries)] * G
        if np.isscalar(capacity_entries)
        else [int(c) for c in capacity_entries]
    )
    if len(caps) != G:
        raise ValueError(f"need {G} capacities, got {len(caps)}")
    if entry_bytes <= 0:
        raise ValueError("entry_bytes must be positive")

    reg = get_registry()
    build_start = _time.perf_counter()
    if blocks is None:
        blocks = build_blocks(
            hotness,
            num_gpus=max(config.min_blocks_per_level or G, 1),
            coarse_frac=config.coarse_block_frac,
        )
    B = blocks.num_blocks
    sizes = blocks.sizes.astype(np.float64)
    weights_h = blocks.hotness_sum  # H_b

    # Enumerate (dst, src) pairs; unconnected GPU pairs are dropped (§6.2).
    pairs: list[tuple[int, int]] = []
    for i in range(G):
        for j in platform.sources_for(i):
            pairs.append((i, j))
    P = len(pairs)
    pair_index = {pair: p for p, pair in enumerate(pairs)}

    # Variable layout: a (B*P) | s (B*G) | t (G) | z.
    num_a = B * P
    num_s = B * G
    t0 = num_a + num_s
    z0 = t0 + G
    num_vars = z0 + 1

    def a_id(b: int, p: int) -> int:
        return b * P + p

    def s_id(b: int, j: int) -> int:
        return num_a + b * G + j

    # Pair cost coefficients w[b, p] = T_{i←j} * H_b * entry_bytes.
    pair_cost = np.array(
        [platform.cost_per_byte(i, j) * entry_bytes for (i, j) in pairs]
    )
    w = weights_h[:, None] * pair_cost[None, :]  # (B, P)

    # Multi-tier backing: each entry has exactly one backing home, chosen
    # by the hotness waterfall (optimal for backing-only reads: hottest to
    # fastest).  A destination can read at most the homed fraction of a
    # block from each tier, so those access variables get a *constant*
    # upper bound — the §6.2 structure is otherwise untouched, and on a
    # single-tier platform every bound is 1.0 (byte-identical LP).
    # Per-tier fixed access latency is amortized per byte and dropped
    # here; the timing models charge it per batched group.
    backing_frac: dict[tuple[int, int], float] | None = None
    if platform.num_tiers > 1:
        home = assign_backing_tiers(
            platform.tiers, len(hotness), entry_bytes, hotness
        )
        backing_frac = {}
        for b in range(B):
            entries = blocks.entries(b)
            homes = home[entries]
            for src in platform.backing_ids:
                backing_frac[(b, src)] = float((homes == src).mean())

    rows_eq: list[int] = []
    cols_eq: list[int] = []
    vals_eq: list[float] = []
    # Σ_j a[b,i,j] = 1 for every (b, i).
    eq_row = 0
    for b in range(B):
        for i in range(G):
            for j in platform.sources_for(i):
                rows_eq.append(eq_row)
                cols_eq.append(a_id(b, pair_index[(i, j)]))
                vals_eq.append(1.0)
            eq_row += 1
    A_eq = sparse.coo_matrix(
        (vals_eq, (rows_eq, cols_eq)), shape=(eq_row, num_vars)
    ).tocsc()
    b_eq = np.ones(eq_row)

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    ub: list[float] = []
    row = 0

    # a[b,i,j] - s[b,j] ≤ 0 for GPU sources (including j == i).
    for b in range(B):
        for p, (i, j) in enumerate(pairs):
            if platform.is_backing(j):
                continue
            rows += [row, row]
            cols += [a_id(b, p), s_id(b, j)]
            vals += [1.0, -1.0]
            ub.append(0.0)
            row += 1

    # Σ_b size_b·s[b,j] ≤ Cap_j.
    for j in range(G):
        for b in range(B):
            rows.append(row)
            cols.append(s_id(b, j))
            vals.append(float(sizes[b]))
        ub.append(float(caps[j]))
        row += 1

    # Ragged-group bound: Σ_b w[b,p]·a[b,p] - t_i ≤ 0 per pair.
    for p, (i, _j) in enumerate(pairs):
        for b in range(B):
            rows.append(row)
            cols.append(a_id(b, p))
            vals.append(float(w[b, p]))
        rows.append(row)
        cols.append(t0 + i)
        vals.append(-1.0)
        ub.append(0.0)
        row += 1

    # Work-conservation bound: Σ_p R[p]·(Σ_b w·a) - t_i ≤ 0 per GPU.
    ratios = [dedication_ratios(platform, i) for i in range(G)]
    for i in range(G):
        for p, (pi, pj) in enumerate(pairs):
            if pi != i:
                continue
            r = ratios[i][pj]
            for b in range(B):
                rows.append(row)
                cols.append(a_id(b, p))
                vals.append(float(r * w[b, p]))
        rows.append(row)
        cols.append(t0 + i)
        vals.append(-1.0)
        ub.append(0.0)
        row += 1

    # t_i - z ≤ 0.
    for i in range(G):
        rows += [row, row]
        cols += [t0 + i, z0]
        vals += [1.0, -1.0]
        ub.append(0.0)
        row += 1

    A_ub = sparse.coo_matrix((vals, (rows, cols)), shape=(row, num_vars)).tocsc()
    b_ub = np.asarray(ub)

    c = np.zeros(num_vars)
    c[z0] = 1.0
    lower = np.zeros(num_vars)
    upper = np.concatenate(
        [np.ones(num_a + num_s), np.full(G + 1, np.inf)]
    )
    if backing_frac is not None:
        for b in range(B):
            for p, (_i, j) in enumerate(pairs):
                if platform.is_backing(j):
                    upper[a_id(b, p)] = backing_frac[(b, j)]

    start = _time.perf_counter()
    if reg.enabled:
        reg.histogram("solver.build.seconds").observe(start - build_start)
        reg.gauge("solver.num_blocks").set(B)
        reg.gauge("solver.num_variables").set(num_vars)
        reg.gauge("solver.num_constraints").set(row + eq_row)
    if config.integral:
        integrality = np.zeros(num_vars)
        integrality[: num_a + num_s] = 1
        res = milp(
            c=c,
            constraints=[
                LinearConstraint(A_ub, -np.inf, b_ub),
                LinearConstraint(A_eq, b_eq, b_eq),
            ],
            bounds=Bounds(lower, upper),
            integrality=integrality,
            options={"time_limit": config.time_limit},
        )
    else:
        res = linprog(
            c,
            A_ub=A_ub,
            b_ub=b_ub,
            A_eq=A_eq,
            b_eq=b_eq,
            bounds=np.column_stack([lower, upper]),
            method=config.method,
            options={"time_limit": config.time_limit},
        )
    elapsed = _time.perf_counter() - start
    reg.histogram("solver.solve.seconds").observe(elapsed)
    if res.status != 0 or res.x is None:
        reg.counter("solver.failures").inc()
        logger.error("policy solve failed after %.2fs: %s", elapsed, res.message)
        if res.status == 1:  # HiGHS iteration/time-limit status
            reg.counter("solver.timeouts").inc()
            raise PolicySolveTimeout(
                f"policy solve hit its {config.time_limit:.1f}s budget: {res.message}"
            )
        raise PolicySolveError(f"policy solve failed: {res.message}")
    reg.counter("solver.solves").inc()
    logger.debug(
        "solved %s: %d blocks, %d vars, %d constraints in %.2fs (z=%.3e s)",
        platform.name, B, num_vars, row + eq_row, elapsed, float(res.x[z0]),
    )

    x = np.asarray(res.x)
    access = x[:num_a].reshape(B, P)
    storage = x[num_a : num_a + num_s].reshape(B, G)
    t = x[t0 : t0 + G]
    return SolvedPolicy(
        platform_name=platform.name,
        blocks=blocks,
        storage=np.clip(storage, 0.0, 1.0),
        pairs=tuple(pairs),
        access=np.clip(access, 0.0, 1.0),
        est_time_per_gpu=t.copy(),
        est_time=float(x[z0]),
        solve_seconds=elapsed,
        capacities=tuple(caps),
        num_variables=num_vars,
        num_constraints=row + eq_row,
    )


def _estimate_times_for_access(
    platform: Platform,
    hotness_sum: np.ndarray,
    pairs: tuple[tuple[int, int], ...],
    access: np.ndarray,
    entry_bytes: int,
) -> np.ndarray:
    """Per-GPU extraction-time estimate for fixed access fractions.

    Evaluates exactly the LP's two lower bounds — the ragged-group bound
    (slowest single source group) and the work-conservation bound
    (core-dedication-weighted sum over sources) — at the given ``access``
    point, so a :class:`SolvedPolicy` whose fractions are *reused* under
    new block hotness gets an estimate consistent with a fresh solve.
    """
    G = platform.num_gpus
    pair_cost = np.array(
        [platform.cost_per_byte(i, j) * entry_bytes for (i, j) in pairs]
    )
    # per-pair load at the access point: Σ_b H_b · T_{i←j} · a[b,p].
    load = (hotness_sum[:, None] * pair_cost[None, :] * access).sum(axis=0)
    ratios = [dedication_ratios(platform, i) for i in range(G)]
    t = np.zeros(G)
    for p, (i, j) in enumerate(pairs):
        t[i] = max(t[i], load[p])  # ragged-group bound
    for i in range(G):
        conserved = sum(
            ratios[i][j] * load[p]
            for p, (pi, j) in enumerate(pairs)
            if pi == i
        )
        t[i] = max(t[i], conserved)  # work-conservation bound
    return t


def warm_start_policy(
    platform: Platform,
    hotness: np.ndarray,
    capacity_entries: int | list[int],
    entry_bytes: int,
    warm: SolvedPolicy,
    max_profile_shift: float = 0.5,
    guard_ratio: float = 1.5,
) -> SolvedPolicy:
    """Incrementally re-solve from a previous :class:`SolvedPolicy`.

    The §6 LP sees a block set only through its *hotness profile* — the
    per-rank-slice sizes and hotness sums — never through entry
    identity.  Under the drift that matters in production (a rotating
    Zipf head, a table-popularity reshuffle) the profile barely moves
    while entries swap ranks wholesale, so the expensive LP solution can
    be reused outright: rebuild the block set as the *same rank slices*
    over the new hotness order and keep ``warm``'s storage/access
    fractions.  Only entries whose hotness class (rank slice → block)
    changed move in the realized placement; the transactional refresher
    then lands exactly that diff.

    Two guards keep this honest:

    * **profile shift** — total-variation distance between the old and
      new normalized block-hotness profiles.  Above
      ``max_profile_shift`` the drift changed the *shape* of the
      distribution (e.g. a flash crowd minting a sharper head), the
      reused fractions may be far from optimal, and a cold solve is
      warranted.
    * **estimate blow-up** — the reused fractions' estimated time at
      the old scale must stay within ``guard_ratio`` of the warm solve's
      objective.

    When a pure rank permutation drifts the hotness (profile shift 0),
    the reused fractions remain an *optimal* LP point — the incremental
    policy is identical in cost to a cold solve on the same snapshot.

    Raises:
        PolicySolveError: when the warm policy is structurally
            incompatible with the request or a guard refuses the reuse;
            callers fall through to the cold chain.
    """
    start = _time.perf_counter()
    hotness = np.asarray(hotness, dtype=np.float64)
    G = platform.num_gpus
    caps = (
        [int(capacity_entries)] * G
        if np.isscalar(capacity_entries)
        else [int(c) for c in capacity_entries]
    )
    if len(hotness) != warm.blocks.num_entries:
        raise PolicySolveError(
            f"warm start refused: entry universe changed "
            f"({warm.blocks.num_entries} -> {len(hotness)})"
        )
    if caps != list(warm.capacities):
        raise PolicySolveError(
            f"warm start refused: capacities changed "
            f"({list(warm.capacities)} -> {caps})"
        )
    if platform.name != warm.platform_name:
        raise PolicySolveError(
            f"warm start refused: platform changed "
            f"({warm.platform_name!r} -> {platform.name!r})"
        )
    if (hotness < 0).any() or hotness.sum() <= 0:
        raise PolicySolveError(
            "warm start refused: new hotness is empty or negative"
        )

    # Same rank slices, new order: sizes are identical by construction,
    # so every capacity and coupling constraint transfers unchanged.
    order = np.argsort(-hotness, kind="stable")
    offsets = warm.blocks.offsets
    hotness_sum = np.add.reduceat(hotness[order], offsets[:-1])
    blocks = BlockSet(
        order=order,
        offsets=offsets.copy(),
        hotness_sum=hotness_sum,
        num_entries=len(hotness),
    )

    old_total = float(warm.blocks.hotness_sum.sum())
    new_total = float(hotness_sum.sum())
    profile_old = warm.blocks.hotness_sum / old_total if old_total > 0 else warm.blocks.hotness_sum
    profile_new = hotness_sum / new_total
    profile_shift = 0.5 * float(np.abs(profile_new - profile_old).sum())
    if profile_shift > max_profile_shift:
        raise PolicySolveError(
            f"warm start refused: hotness profile shifted {profile_shift:.3f} "
            f"(> {max_profile_shift:.3f}); the distribution changed shape"
        )

    t = _estimate_times_for_access(
        platform, hotness_sum, warm.pairs, warm.access, entry_bytes
    )
    # Guard against the warm policy *re-evaluated with the same bound
    # evaluator* at the old block hotness — never against the LP's
    # reported objective.  The LP objective lives at whatever absolute
    # scale the hotness came in at, and for small scales sits inside the
    # solver's feasibility tolerance (i.e. it can be optimistic), so
    # comparing it to an exact bound evaluation would fake a blow-up.
    # One yardstick on both sides makes a pure rank permutation score a
    # ratio of exactly 1.0 (identical hotness profile → identical t).
    t_warm = _estimate_times_for_access(
        platform, warm.blocks.hotness_sum, warm.pairs, warm.access, entry_bytes
    )
    baseline = float(t_warm.max())
    scale = old_total / new_total if new_total > 0 else 1.0
    est_normalized = float(t.max()) * scale
    if baseline > 0 and est_normalized > guard_ratio * baseline:
        raise PolicySolveError(
            f"warm start refused: reused fractions estimate "
            f"{est_normalized:.3e}s vs warm {baseline:.3e}s "
            f"(> {guard_ratio:.2f}x)"
        )

    reclassed = int((blocks.block_of() != warm.blocks.block_of()).sum())
    elapsed = _time.perf_counter() - start
    reg = get_registry()
    if reg.enabled:
        reg.counter("solver.warm_starts").inc()
        reg.gauge("solver.warm_start.profile_shift").set(profile_shift)
        reg.gauge("solver.warm_start.entries_reclassed").set(reclassed)
        reg.histogram("solver.warm_start.seconds").observe(elapsed)
    logger.info(
        "warm-start re-solve: %d/%d entries changed hotness class, "
        "profile shift %.3f, est %.3es (warm %.3es) in %.4fs",
        reclassed, len(hotness), profile_shift, float(t.max()),
        baseline, elapsed,
    )
    return SolvedPolicy(
        platform_name=warm.platform_name,
        blocks=blocks,
        storage=warm.storage.copy(),
        pairs=warm.pairs,
        access=warm.access.copy(),
        est_time_per_gpu=t,
        est_time=float(t.max()),
        solve_seconds=elapsed,
        capacities=warm.capacities,
        num_variables=0,
        num_constraints=0,
    )


def solve_sharded_policy(
    platform: Platform,
    hotness: np.ndarray,
    member_mask: np.ndarray,
    capacity_entries: int | list[int],
    entry_bytes: int,
    config: SolverConfig | None = None,
    fallback: "FallbackConfig | None" = None,
) -> "PolicyOutcome":
    """The per-GPU stage under a node-level placement (cluster tier).

    A cluster node owns only the shard ``member_mask`` selects; its GPUs
    should spend their capacity exclusively on that shard, but the §6
    machinery should otherwise be untouched.  So: zero the hotness of
    every non-member entry (the MILP then has no incentive to store it),
    run the ordinary :func:`solve_policy_with_fallback` chain, and
    intersect the realized placement with the shard — the intersection
    guards the capacity-surplus case where a fallback rung pads caches
    with entries the node will never be asked for.
    """
    hotness = np.asarray(hotness, dtype=np.float64)
    member_mask = np.asarray(member_mask, dtype=bool)
    if member_mask.shape != hotness.shape:
        raise ValueError("member mask must align with the hotness vector")
    if not member_mask.any():
        raise ValueError("a node's shard cannot be empty")
    shard_hotness = np.where(member_mask, hotness, 0.0)
    outcome = solve_policy_with_fallback(
        platform,
        shard_hotness,
        capacity_entries,
        entry_bytes,
        config=config,
        fallback=fallback,
    )
    per_gpu = tuple(
        ids[member_mask[ids]] for ids in outcome.placement.per_gpu
    )
    placement = Placement(
        num_entries=outcome.placement.num_entries, per_gpu=per_gpu
    )
    return PolicyOutcome(
        placement=placement,
        source=outcome.source,
        est_time=outcome.est_time,
        elapsed=outcome.elapsed,
        attempts=outcome.attempts,
        solved=outcome.solved,
    )


# ---------------------------------------------------------------------------
# Fallback chain: MILP → greedy heuristic → last-known-good cached policy.
# ---------------------------------------------------------------------------

#: Last successful MILP solve per platform name — the chain's final rung.
_LAST_KNOWN_GOOD: dict[str, SolvedPolicy] = {}


def remember_policy(solved: SolvedPolicy) -> None:
    """Record ``solved`` as the last-known-good policy for its platform."""
    _LAST_KNOWN_GOOD[solved.platform_name] = solved


def last_known_good(platform_name: str) -> SolvedPolicy | None:
    """The most recent successful solve for ``platform_name``, if any."""
    return _LAST_KNOWN_GOOD.get(platform_name)


def clear_policy_cache() -> None:
    """Forget all cached policies (test isolation)."""
    _LAST_KNOWN_GOOD.clear()


@dataclass(frozen=True)
class FallbackConfig:
    """Knobs of :func:`solve_policy_with_fallback`.

    Attributes:
        deadline_seconds: total wall-clock budget across all MILP attempts;
            each attempt's HiGHS ``time_limit`` is clipped to what remains.
        retry: backoff schedule for MILP attempts (defaults to two tries
            with no sleep — solver failures are rarely transient, but a
            fresh attempt with a smaller remaining budget can still finish
            on a presolve-friendly path).
        greedy_fractions: ``replicate_fraction`` candidates searched by the
            greedy fallback.
        use_cached: consult the last-known-good registry when the MILP
            fails (and prefer it over greedy when its estimate is better).
    """

    deadline_seconds: float = 30.0
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_attempts=2, base_delay=0.0)
    )
    greedy_fractions: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)
    use_cached: bool = True


@dataclass(frozen=True)
class PolicyOutcome:
    """What :func:`solve_policy_with_fallback` actually delivered.

    ``source`` records which rung of the chain produced the placement:
    ``"incremental"`` (a warm start reusing the previous solve's
    fractions, see :func:`warm_start_policy`), ``"milp"`` (the real
    solve), ``"greedy"``
    (:func:`~repro.core.policy.hot_replicate_warm_partition_policy`
    searched over replicate fractions), or ``"cached"`` (last-known-good
    from a previous successful solve).
    """

    placement: Placement
    source: str
    est_time: float
    elapsed: float
    attempts: int
    solved: SolvedPolicy | None = None


def _cached_compatible(
    cached: SolvedPolicy, num_entries: int, caps: list[int]
) -> bool:
    return (
        cached.blocks.num_entries == num_entries
        and list(cached.capacities) == caps
    )


def solve_policy_with_fallback(
    platform: Platform,
    hotness: np.ndarray,
    capacity_entries: int | list[int],
    entry_bytes: int,
    config: SolverConfig | None = None,
    fallback: FallbackConfig | None = None,
    solve_fn: Callable[..., SolvedPolicy] = solve_policy,
    clock: Callable[[], float] = _time.monotonic,
    sleep: Callable[[float], None] = _time.sleep,
    retry_rng: Any | None = None,
    warm: SolvedPolicy | None = None,
    warm_max_profile_shift: float = 0.5,
) -> PolicyOutcome:
    """Solve the cache policy, degrading gracefully instead of raising.

    The chain (§6 solve hardened for production):

    0. **Incremental** (only with ``warm``) — :func:`warm_start_policy`
       reuses the previous solve's storage/access fractions over the new
       hotness order, re-placing only entries whose hotness class
       changed.  Milliseconds instead of an LP solve; refused (falling
       through to the cold chain) when the hotness *profile* shifted
       more than ``warm_max_profile_shift`` or the reused fractions'
       estimate blows up.
    1. **MILP** — :func:`solve_policy` under ``fallback.retry``, with each
       attempt's HiGHS budget clipped to the remaining wall-clock deadline.
       Successful solves are remembered per platform.
    2. **Greedy** — searches
       :func:`~repro.core.policy.hot_replicate_warm_partition_policy` over
       ``fallback.greedy_fractions``, scored by
       :func:`~repro.core.evaluate.evaluate_placement`.
    3. **Cached** — the last-known-good :class:`SolvedPolicy` for this
       platform (same entry count and capacities), used when it beats the
       greedy estimate or when greedy itself fails.

    ``solve_fn``, ``clock`` and ``sleep`` are injectable so tests can force
    timeouts deterministically, and ``retry_rng`` (a seed or numpy
    ``Generator``) pins the retry jitter schedule for bit-reproducible
    runs.  Raises :class:`PolicySolveError` only when every rung fails.
    """
    from repro.core.evaluate import evaluate_placement

    config = config or SolverConfig()
    fb = fallback or FallbackConfig()
    reg = get_registry()
    start = clock()
    deadline = Deadline.after(fb.deadline_seconds, clock=clock)
    G = platform.num_gpus
    caps = (
        [int(capacity_entries)] * G
        if np.isscalar(capacity_entries)
        else [int(c) for c in capacity_entries]
    )
    hotness = np.asarray(hotness, dtype=np.float64)
    attempts = 0

    if warm is not None:
        try:
            solved = warm_start_policy(
                platform,
                hotness,
                caps,
                entry_bytes,
                warm,
                max_profile_shift=warm_max_profile_shift,
            )
            remember_policy(solved)
            reg.counter("solver.fallback.source", source="incremental").inc()
            return PolicyOutcome(
                placement=solved.realize(),
                source="incremental",
                est_time=solved.est_time,
                elapsed=clock() - start,
                attempts=attempts,
                solved=solved,
            )
        except PolicySolveError as exc:
            reg.counter("solver.warm_start.refused").inc()
            logger.info("%s; falling through to the cold chain", exc)

    def attempt() -> SolvedPolicy:
        nonlocal attempts
        attempts += 1
        budget = deadline.remaining()
        if budget <= 0:
            raise PolicySolveTimeout("wall-clock deadline exhausted before solve")
        cfg = replace(config, time_limit=min(config.time_limit, budget))
        return solve_fn(platform, hotness, caps, entry_bytes, cfg)

    try:
        solved = retry_call(
            attempt,
            policy=fb.retry,
            retry_on=(PolicySolveError,),
            sleep=sleep,
            deadline=deadline,
            rng=retry_rng,
        )
        remember_policy(solved)
        reg.counter("solver.fallback.source", source="milp").inc()
        return PolicyOutcome(
            placement=solved.realize(),
            source="milp",
            est_time=solved.est_time,
            elapsed=clock() - start,
            attempts=attempts,
            solved=solved,
        )
    except (RetriesExhausted, PolicySolveError) as exc:
        reg.counter("solver.fallback.engaged").inc()
        logger.warning(
            "MILP solve failed after %d attempt(s) (%s); "
            "falling back to greedy policy",
            attempts,
            exc,
        )
        milp_failure = exc

    cached = last_known_good(platform.name) if fb.use_cached else None
    if cached is not None and not _cached_compatible(cached, len(hotness), caps):
        cached = None

    greedy_best: tuple[Placement, float] | None = None
    try:
        cap = min(caps)
        for frac in fb.greedy_fractions:
            placement = hot_replicate_warm_partition_policy(hotness, cap, G, frac)
            report = evaluate_placement(platform, placement, hotness, entry_bytes)
            if greedy_best is None or report.time < greedy_best[1]:
                greedy_best = (placement, report.time)
    except Exception:
        logger.exception("greedy fallback policy failed")
        greedy_best = None

    if greedy_best is not None and (
        cached is None or greedy_best[1] <= cached.est_time
    ):
        reg.counter("solver.fallback.source", source="greedy").inc()
        logger.info(
            "serving greedy fallback policy (est %.3es)", greedy_best[1]
        )
        return PolicyOutcome(
            placement=greedy_best[0],
            source="greedy",
            est_time=greedy_best[1],
            elapsed=clock() - start,
            attempts=attempts,
        )
    if cached is not None:
        reg.counter("solver.fallback.source", source="cached").inc()
        logger.info(
            "serving last-known-good cached policy for %s (est %.3es)",
            platform.name,
            cached.est_time,
        )
        return PolicyOutcome(
            placement=cached.realize(),
            source="cached",
            est_time=cached.est_time,
            elapsed=clock() - start,
            attempts=attempts,
            solved=cached,
        )
    raise PolicySolveError(
        "every rung of the fallback chain failed (milp, greedy, cached)"
    ) from milp_failure
