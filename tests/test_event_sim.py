"""Discrete event simulator vs the fluid/analytic models."""

import pytest

from repro.hardware.platform import HOST
from repro.sim.event_sim import (
    simulate_factored_event_driven,
    simulate_naive_event_driven,
)
from repro.sim.mechanisms import (
    GpuDemand,
    factored_extraction,
    naive_peer_extraction,
)

CHUNK = 16 * 1024


def _demand(local=40e6, g1=20e6, g2=10e6, host=5e6):
    vols = {}
    if local:
        vols[0] = local
    if g1:
        vols[1] = g1
    if g2:
        vols[2] = g2
    if host:
        vols[HOST] = host
    return GpuDemand(dst=0, volumes=vols)


class TestFactoredConvergence:
    @pytest.mark.parametrize(
        "volumes",
        [
            dict(local=40e6, g1=20e6, g2=10e6, host=5e6),
            dict(local=200e6, g1=5e6, g2=0.0, host=1e6),
            dict(local=0.0, g1=30e6, g2=30e6, host=0.0),
            dict(local=10e6, g1=0.0, g2=0.0, host=20e6),
        ],
    )
    def test_matches_analytic_on_hardwired(self, platform_a, volumes):
        demand = _demand(**volumes)
        event = simulate_factored_event_driven(platform_a, demand, CHUNK)
        analytic = factored_extraction(platform_a, demand)
        assert event.total_time == pytest.approx(analytic.time, rel=0.10)

    def test_matches_analytic_on_switch(self, platform_c):
        demand = _demand()
        event = simulate_factored_event_driven(platform_c, demand, CHUNK)
        analytic = factored_extraction(platform_c, demand)
        assert event.total_time == pytest.approx(analytic.time, rel=0.10)

    def test_smaller_chunks_converge_closer(self, platform_a):
        demand = _demand()
        analytic = factored_extraction(platform_a, demand).time
        coarse = simulate_factored_event_driven(platform_a, demand, 1024 * 1024)
        fine = simulate_factored_event_driven(platform_a, demand, 8 * 1024)
        assert abs(fine.total_time - analytic) <= abs(coarse.total_time - analytic) + 1e-9


class TestNaiveConvergence:
    def test_fluid_fixed_point_validated_on_hardwired(self, platform_a):
        """The §5 congestion model agrees with independent discrete dynamics."""
        demand = _demand()
        event = simulate_naive_event_driven(platform_a, demand, CHUNK)
        analytic = naive_peer_extraction(platform_a, demand)
        assert event.total_time == pytest.approx(analytic.time, rel=0.12)

    def test_agrees_on_switch_single_reader(self, platform_c):
        demand = _demand()
        readers = {1: 1, 2: 1}
        event = simulate_naive_event_driven(
            platform_c, demand, CHUNK, readers_per_source=readers
        )
        analytic = naive_peer_extraction(platform_c, demand, readers)
        assert event.total_time == pytest.approx(analytic.time, rel=0.25)

    def test_host_heavy_congestion(self, platform_a):
        demand = _demand(local=10e6, g1=0.0, g2=0.0, host=30e6)
        event = simulate_naive_event_driven(platform_a, demand, CHUNK)
        analytic = naive_peer_extraction(platform_a, demand)
        assert event.total_time == pytest.approx(analytic.time, rel=0.15)

    def test_dispatch_seed_is_noise_not_signal(self, platform_a):
        demand = _demand()
        a = simulate_naive_event_driven(platform_a, demand, CHUNK, seed=1)
        b = simulate_naive_event_driven(platform_a, demand, CHUNK, seed=2)
        assert a.total_time == pytest.approx(b.total_time, rel=0.10)


class TestMechanismOrdering:
    def test_factored_beats_naive_in_both_simulators(self, platform_a):
        demand = _demand(host=20e6)
        ev_f = simulate_factored_event_driven(platform_a, demand, CHUNK)
        ev_n = simulate_naive_event_driven(platform_a, demand, CHUNK)
        an_f = factored_extraction(platform_a, demand)
        an_n = naive_peer_extraction(platform_a, demand)
        assert ev_f.total_time < ev_n.total_time
        assert an_f.time < an_n.time


class TestEdgeCases:
    def test_empty_demand(self, platform_a):
        result = simulate_naive_event_driven(
            platform_a, GpuDemand(dst=0, volumes={}), CHUNK
        )
        assert result.total_time == 0.0
        assert result.chunks_processed == 0

    def test_unreachable_source_rejected(self, platform_b):
        demand = GpuDemand(dst=0, volumes={5: 1e6})
        with pytest.raises(ValueError, match="unreachable"):
            simulate_naive_event_driven(platform_b, demand, CHUNK)

    def test_chunk_accounting(self, platform_a):
        demand = _demand(local=1e6, g1=1e6, g2=0.0, host=0.0)
        result = simulate_factored_event_driven(platform_a, demand, 64 * 1024)
        expected = round(1e6 / (64 * 1024)) * 2
        assert result.chunks_processed == pytest.approx(expected, abs=2)
