"""Batch simulation engine and reports."""

import pytest

from repro.hardware.platform import HOST
from repro.sim.engine import BatchReport, readers_per_source, simulate_batch
from repro.sim.mechanisms import GpuDemand, Mechanism


def _partition_demands(platform, local=10e6, remote_each=2e6, host=1e6):
    demands = []
    for dst in platform.gpu_ids:
        vols = {dst: local, HOST: host}
        for src in platform.topology.peers(dst):
            vols[src] = remote_each
        demands.append(GpuDemand(dst=dst, volumes=vols))
    return demands


class TestSimulateBatch:
    def test_batch_time_is_max_over_gpus(self, platform_a):
        demands = _partition_demands(platform_a)
        report = simulate_batch(platform_a, demands, Mechanism.FACTORED)
        assert report.time == max(r.time for r in report.per_gpu)

    def test_all_mechanisms_run(self, platform_c):
        demands = _partition_demands(platform_c)
        for mech in Mechanism:
            report = simulate_batch(platform_c, demands, mech)
            assert report.time > 0
            assert report.mechanism is mech

    def test_factored_beats_naive(self, platform_a):
        demands = _partition_demands(platform_a, host=10e6)
        fem = simulate_batch(platform_a, demands, Mechanism.FACTORED)
        naive = simulate_batch(platform_a, demands, Mechanism.PEER_NAIVE)
        assert fem.time < naive.time

    def test_factored_beats_message(self, platform_c):
        demands = _partition_demands(platform_c)
        fem = simulate_batch(platform_c, demands, Mechanism.FACTORED)
        msg = simulate_batch(platform_c, demands, Mechanism.MESSAGE)
        assert fem.time < msg.time

    def test_rejects_unconnected_demand(self, platform_b):
        demands = [GpuDemand(dst=0, volumes={5: 1.0})]
        with pytest.raises(ValueError):
            simulate_batch(platform_b, demands, Mechanism.FACTORED)

    def test_empty_demands(self, platform_a):
        report = simulate_batch(platform_a, [], Mechanism.FACTORED)
        assert report.time == 0.0


class TestBatchReport:
    def _report(self, platform):
        return simulate_batch(platform, _partition_demands(platform), Mechanism.FACTORED)

    def test_access_split_sums_to_one(self, platform_a):
        split = self._report(platform_a).access_split()
        assert sum(split.values()) == pytest.approx(1.0)

    def test_volume_split_matches_demands(self, platform_a):
        report = self._report(platform_a)
        split = report.volume_split()
        assert split["local"] == pytest.approx(4 * 10e6)
        assert split["remote"] == pytest.approx(4 * 3 * 2e6)
        assert split["host"] == pytest.approx(4 * 1e6)

    def test_total_volume(self, platform_a):
        report = self._report(platform_a)
        assert report.total_volume() == pytest.approx(sum(report.volume_split().values()))

    def test_time_split_keys(self, platform_a):
        split = self._report(platform_a).time_split()
        assert set(split) == {"local", "remote", "host"}
        assert all(v >= 0 for v in split.values())

    def test_mean_gpu_time_le_batch_time(self, platform_a):
        report = self._report(platform_a)
        assert report.mean_gpu_time <= report.time

    def test_empty_report(self):
        report = BatchReport(mechanism=Mechanism.FACTORED, per_gpu=[])
        assert report.time == 0.0
        assert report.mean_gpu_time == 0.0
        assert report.access_split() == {"local": 0.0, "remote": 0.0, "host": 0.0}


class TestReadersPerSource:
    def test_counts_remote_readers(self, platform_c):
        demands = _partition_demands(platform_c)
        readers = readers_per_source(demands)
        # Every GPU is read by the 7 others.
        assert all(readers[g] == 7 for g in platform_c.gpu_ids)

    def test_ignores_local_and_host(self, platform_a):
        demands = [GpuDemand(dst=0, volumes={0: 1.0, HOST: 1.0})]
        assert readers_per_source(demands) == {}

    def test_ignores_zero_volume(self, platform_a):
        demands = [GpuDemand(dst=0, volumes={1: 0.0})]
        assert readers_per_source(demands) == {}
