"""DLR inference workloads: multi-table embedding request streams (§8.1).

A DLR model owns many embedding tables (Criteo-TB: 26; SYN-A/B: 100); each
inference sample carries one key per table.  All tables share one global
entry id space (each table occupies a contiguous range), matching how
multi-table caches flatten tables — so the cache and solver treat DLR and
GNN workloads identically.

Per-table key skew follows a Zipf distribution over a *per-table random
permutation* of the table's entries, so the hot set of each table is
uncorrelated with entry ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.stats import zipf_pmf


@dataclass(frozen=True)
class DlrWorkload:
    """A reproducible multi-table DLR inference workload.

    Attributes:
        table_sizes: entries per embedding table.
        alpha: Zipf exponent of per-table key popularity (paper: 1.2 for
            SYN-A, 1.4 for SYN-B).
        batch_size: inference requests per GPU per iteration (paper: 8K).
        num_gpus: data-parallel width.
        seed: permutation seed (fixes which entries are hot).
    """

    table_sizes: tuple[int, ...]
    alpha: float
    batch_size: int = 8192
    num_gpus: int = 8
    seed: int = 0
    #: explicit per-table popularity permutations; when given they replace
    #: the seed-derived ones (used by the drift generator, §7.2)
    permutations: tuple[np.ndarray, ...] | None = None
    #: filled in __post_init__: start offset of each table in the global id space
    table_offsets: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        sizes = tuple(int(s) for s in self.table_sizes)
        if not sizes or any(s <= 0 for s in sizes):
            raise ValueError("table sizes must be positive")
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if self.batch_size <= 0 or self.num_gpus <= 0:
            raise ValueError("batch size and GPU count must be positive")
        offsets = tuple(int(o) for o in np.concatenate([[0], np.cumsum(sizes)[:-1]]))
        object.__setattr__(self, "table_sizes", sizes)
        object.__setattr__(self, "table_offsets", offsets)
        if self.permutations is not None:
            perms = tuple(np.asarray(p, dtype=np.int64) for p in self.permutations)
            if len(perms) != len(sizes):
                raise ValueError("need one permutation per table")
            for perm, size in zip(perms, sizes):
                if perm.shape != (size,) or len(np.unique(perm)) != size:
                    raise ValueError("each permutation must cover its table")
            object.__setattr__(self, "permutations", perms)

    @property
    def num_tables(self) -> int:
        return len(self.table_sizes)

    @property
    def num_entries(self) -> int:
        return int(sum(self.table_sizes))

    @property
    def keys_per_request(self) -> int:
        """Embedding keys one inference sample touches (one per table)."""
        return self.num_tables

    def _table_permutations(self) -> list[np.ndarray]:
        if self.permutations is not None:
            return [p.copy() for p in self.permutations]
        rng = make_rng(self.seed)
        return [rng.permutation(size) for size in self.table_sizes]

    def hotness(self) -> np.ndarray:
        """Exact expected accesses per entry per batch per GPU.

        Analytic — the Zipf popularity is known, so no profiling is
        needed (this is the 'application-provided hotness' path of §6.1).
        """
        hot = np.empty(self.num_entries, dtype=np.float64)
        for size, offset, perm in zip(
            self.table_sizes, self.table_offsets, self._table_permutations()
        ):
            pmf = zipf_pmf(size, self.alpha)
            table_hot = np.empty(size)
            table_hot[perm] = pmf * self.batch_size
            hot[offset : offset + size] = table_hot
        return hot

    def batches(
        self, seed: int | np.random.Generator = 1
    ) -> Iterator[list[np.ndarray]]:
        """Yield per-iteration key batches (one array per GPU), forever."""
        rng = make_rng(seed)
        perms = self._table_permutations()
        pmfs = [zipf_pmf(size, self.alpha) for size in self.table_sizes]
        while True:
            gpu_rngs = spawn_rngs(rng, self.num_gpus)
            batch = []
            for gpu_rng in gpu_rngs:
                keys = np.empty(
                    (self.num_tables, self.batch_size), dtype=np.int64
                )
                for t, (size, offset, perm, pmf) in enumerate(
                    zip(self.table_sizes, self.table_offsets, perms, pmfs)
                ):
                    ranks = gpu_rng.choice(size, size=self.batch_size, p=pmf)
                    keys[t] = offset + perm[ranks]
                batch.append(keys.ravel())
            yield batch

    def take_batches(
        self, count: int, seed: int | np.random.Generator = 1
    ) -> list[list[np.ndarray]]:
        """Materialize ``count`` iterations of batches."""
        out = []
        for i, batch in enumerate(self.batches(seed)):
            if i >= count:
                break
            out.append(batch)
        return out
