"""Real (numpy) GraphSAGE over sampled neighbourhood trees.

The paper treats the dense side as a black box behind DGL/PyTorch; for the
examples to be genuinely end-to-end (extract embeddings → aggregate →
predict → update) this module implements layered GraphSAGE exactly on the
sampled fanout tree, with full backpropagation and SGD — in plain numpy,
CPU-only.  The *performance* of the dense side is modelled separately by
:mod:`repro.gnn.models`; this module supplies functional realism.

Structure: a batch of seeds is expanded depth by depth with fixed fanouts
(:class:`FanoutTree`); level ``ℓ`` of the network computes, for every tree
position at depth ``d ≤ L−ℓ``,

    h^ℓ[d] = relu( h^{ℓ-1}[d]·W_self + mean(h^{ℓ-1}[children(d)])·W_neigh )

with ``h⁰`` the (frozen, cache-extracted) embedding features.  The final
representation of depth-0 positions (the seeds) feeds a linear classifier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gnn.graph import CSRGraph
from repro.gnn.sampling import sample_neighbors
from repro.utils.rng import make_rng


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


@dataclass(frozen=True)
class FanoutTree:
    """A sampled neighbourhood tree for one seed batch.

    ``nodes[d]`` holds the vertex id of every tree position at depth ``d``;
    depth d+1 has ``len(nodes[d]) * fanouts[d]`` positions, children of
    position ``i`` occupying the slice ``i*fanout:(i+1)*fanout``.
    """

    fanouts: tuple[int, ...]
    nodes: tuple[np.ndarray, ...]

    @property
    def depth(self) -> int:
        return len(self.fanouts)

    @property
    def seeds(self) -> np.ndarray:
        return self.nodes[0]

    def all_keys(self) -> np.ndarray:
        """Every vertex occurrence — the embedding keys to extract."""
        return np.concatenate(self.nodes)

    def features_by_depth(
        self, unique_keys: np.ndarray, values: np.ndarray
    ) -> list[np.ndarray]:
        """Scatter extracted (unique) embedding values onto tree positions.

        ``values[i]`` must be the embedding of ``unique_keys[i]``; returns
        one ``(positions, dim)`` matrix per depth.
        """
        lookup = {int(k): i for i, k in enumerate(unique_keys)}
        out = []
        for depth_nodes in self.nodes:
            rows = np.fromiter(
                (lookup[int(v)] for v in depth_nodes),
                dtype=np.int64,
                count=len(depth_nodes),
            )
            out.append(values[rows])
        return out


def sample_tree(
    graph: CSRGraph,
    seeds: np.ndarray,
    fanouts: tuple[int, ...],
    seed: int | np.random.Generator = 0,
) -> FanoutTree:
    """Expand seeds into a fixed-fanout tree (with-replacement sampling).

    Zero-degree vertices contribute themselves as their own "neighbours"
    so the tree stays rectangular (their aggregation degenerates to a
    self-loop, the usual fallback).
    """
    rng = make_rng(seed)
    nodes = [np.asarray(seeds, dtype=np.int64)]
    frontier = nodes[0]
    for fanout in fanouts:
        degs = graph.indptr[frontier + 1] - graph.indptr[frontier]
        children = np.repeat(frontier, fanout)
        alive = degs > 0
        if alive.any():
            sampled = sample_neighbors(graph, frontier[alive], fanout, rng)
            mask = np.repeat(alive, fanout)
            children[mask] = sampled
        nodes.append(children)
        frontier = children
    return FanoutTree(fanouts=tuple(fanouts), nodes=tuple(nodes))


@dataclass
class SageGradients:
    """Per-level weight gradients plus the classifier's."""

    w_self: list[np.ndarray]
    w_neigh: list[np.ndarray]
    w_out: np.ndarray


class GraphSageModel:
    """L-level mean-aggregator GraphSAGE + linear classifier (numpy)."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        num_levels: int,
        num_classes: int,
        seed: int = 0,
    ) -> None:
        if num_levels < 1:
            raise ValueError("need at least one message-passing level")
        rng = make_rng(seed)
        self.w_self: list[np.ndarray] = []
        self.w_neigh: list[np.ndarray] = []
        dim = input_dim
        for _ in range(num_levels):
            scale = 1.0 / np.sqrt(2.0 * dim)
            self.w_self.append(rng.normal(0.0, scale, (dim, hidden_dim)))
            self.w_neigh.append(rng.normal(0.0, scale, (dim, hidden_dim)))
            dim = hidden_dim
        self.w_out = rng.normal(0.0, 1.0 / np.sqrt(dim), (dim, num_classes))

    @property
    def num_levels(self) -> int:
        return len(self.w_self)

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(
        self, tree: FanoutTree, features: list[np.ndarray]
    ) -> tuple[np.ndarray, list]:
        """Seed logits + the tape needed for :meth:`backward`."""
        if tree.depth != self.num_levels:
            raise ValueError(
                f"tree depth {tree.depth} != model levels {self.num_levels}"
            )
        if len(features) != tree.depth + 1:
            raise ValueError("need one feature matrix per tree depth")
        h = list(features)
        tape = []
        for level in range(self.num_levels):
            new_h = []
            level_tape = []
            active_depths = self.num_levels - level
            for d in range(active_depths):
                fanout = tree.fanouts[d]
                self_in = h[d]
                neigh_in = h[d + 1].reshape(len(h[d]), fanout, -1).mean(axis=1)
                pre = self_in @ self.w_self[level] + neigh_in @ self.w_neigh[level]
                new_h.append(relu(pre))
                level_tape.append((self_in, neigh_in, pre))
            tape.append(level_tape)
            h = new_h
        logits = h[0] @ self.w_out
        tape.append(h[0])
        return logits, tape

    # ------------------------------------------------------------------
    # Loss + exact backward
    # ------------------------------------------------------------------
    def loss_and_grads(
        self,
        tree: FanoutTree,
        features: list[np.ndarray],
        labels: np.ndarray,
    ) -> tuple[float, SageGradients]:
        """Softmax cross-entropy over seeds and exact weight gradients.

        Input embeddings stay frozen (read-only access, §2); all dense
        weights receive full gradients through the tree.
        """
        logits, tape = self.forward(tree, features)
        final_h = tape[-1]
        labels = np.asarray(labels)
        n = len(labels)
        shifted = logits - logits.max(axis=1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=1, keepdims=True)
        loss = float(-np.log(probs[np.arange(n), labels] + 1e-12).mean())

        dlogits = probs
        dlogits[np.arange(n), labels] -= 1.0
        dlogits /= n
        dw_out = final_h.T @ dlogits

        grads = SageGradients(
            w_self=[np.zeros_like(w) for w in self.w_self],
            w_neigh=[np.zeros_like(w) for w in self.w_neigh],
            w_out=dw_out,
        )
        # d h^{level}[d] for the depths active after the final level.
        dh = [dlogits @ self.w_out.T]
        for level in range(self.num_levels - 1, -1, -1):
            level_tape = tape[level]
            new_dh = [None] * (len(level_tape) + 1)
            for d, (self_in, neigh_in, pre) in enumerate(level_tape):
                grad_out = dh[d]
                if grad_out is None:
                    continue
                dpre = grad_out * (pre > 0)
                grads.w_self[level] += self_in.T @ dpre
                grads.w_neigh[level] += neigh_in.T @ dpre
                dself = dpre @ self.w_self[level].T
                dneigh = dpre @ self.w_neigh[level].T
                fanout = tree.fanouts[d]
                spread = np.repeat(dneigh / fanout, fanout, axis=0)
                if new_dh[d] is None:
                    new_dh[d] = dself
                else:
                    new_dh[d] = new_dh[d] + dself
                if new_dh[d + 1] is None:
                    new_dh[d + 1] = spread
                else:
                    new_dh[d + 1] = new_dh[d + 1] + spread
            dh = new_dh
        return loss, grads

    def sgd_step(self, grads: SageGradients, lr: float = 0.1) -> None:
        for level in range(self.num_levels):
            self.w_self[level] -= lr * grads.w_self[level]
            self.w_neigh[level] -= lr * grads.w_neigh[level]
        self.w_out -= lr * grads.w_out

    def predict(self, tree: FanoutTree, features: list[np.ndarray]) -> np.ndarray:
        logits, _ = self.forward(tree, features)
        return logits.argmax(axis=1)
