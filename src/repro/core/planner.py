"""Capacity planning: how much GPU cache does a latency target need?

A downstream-user utility the paper implies but does not ship: given a
workload's hotness and a target per-iteration extraction latency, find the
smallest per-GPU cache ratio whose *solved* policy meets the target.
Extraction time is monotone non-increasing in capacity (more cache never
hurts — the solver can always ignore extra space), so bisection over the
ratio is exact up to the requested resolution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evaluate import evaluate_placement
from repro.core.solver import SolverConfig, solve_policy
from repro.hardware.platform import Platform
from repro.sim.mechanisms import Mechanism


@dataclass(frozen=True)
class PlanStep:
    """One probed operating point during planning."""

    cache_ratio: float
    capacity_entries: int
    extraction_time: float


@dataclass(frozen=True)
class CapacityPlan:
    """Planning outcome.

    ``feasible`` is False when even a 100% cache misses the target (the
    target is below the all-local floor).
    """

    target_time: float
    feasible: bool
    cache_ratio: float
    capacity_entries: int
    extraction_time: float
    steps: tuple[PlanStep, ...]


def plan_capacity(
    platform: Platform,
    hotness: np.ndarray,
    entry_bytes: int,
    target_time: float,
    ratio_resolution: float = 0.01,
    solver: SolverConfig | None = None,
) -> CapacityPlan:
    """Bisect the smallest cache ratio meeting ``target_time``.

    Args:
        platform: hardware model.
        hotness: expected accesses per entry per batch per GPU.
        entry_bytes: embedding entry size.
        target_time: per-iteration extraction budget, seconds.
        ratio_resolution: bisection stops when the bracket is this tight.
        solver: solver knobs (a coarse default keeps probes ~1 s each).

    Returns:
        A :class:`CapacityPlan` with the probe history.
    """
    if target_time <= 0:
        raise ValueError("target time must be positive")
    if not 0 < ratio_resolution < 1:
        raise ValueError("ratio resolution must be in (0, 1)")
    hotness = np.asarray(hotness, dtype=np.float64)
    solver = solver or SolverConfig(coarse_block_frac=0.02)
    num_entries = len(hotness)
    steps: list[PlanStep] = []

    def probe(ratio: float) -> float:
        capacity = int(round(ratio * num_entries))
        placement = solve_policy(
            platform, hotness, capacity, entry_bytes, solver
        ).realize()
        time = evaluate_placement(
            platform, placement, hotness, entry_bytes, Mechanism.FACTORED
        ).time
        steps.append(
            PlanStep(
                cache_ratio=ratio, capacity_entries=capacity, extraction_time=time
            )
        )
        return time

    full = probe(1.0)
    if full > target_time:
        return CapacityPlan(
            target_time=target_time,
            feasible=False,
            cache_ratio=1.0,
            capacity_entries=num_entries,
            extraction_time=full,
            steps=tuple(steps),
        )
    zero = probe(0.0)
    if zero <= target_time:
        return CapacityPlan(
            target_time=target_time,
            feasible=True,
            cache_ratio=0.0,
            capacity_entries=0,
            extraction_time=zero,
            steps=tuple(steps),
        )

    lo, hi = 0.0, 1.0  # lo misses the target, hi meets it
    hi_time = full
    while hi - lo > ratio_resolution:
        mid = (lo + hi) / 2
        time = probe(mid)
        if time <= target_time:
            hi, hi_time = mid, time
        else:
            lo = mid
    capacity = int(round(hi * num_entries))
    return CapacityPlan(
        target_time=target_time,
        feasible=True,
        cache_ratio=hi,
        capacity_entries=capacity,
        extraction_time=hi_time,
        steps=tuple(steps),
    )
