"""Table 1: single-GPU runtime/data breakdown (unsup. GraphSAGE + MAG)."""

from repro.bench.experiments import table1_breakdown


def bench_table1_breakdown(run_experiment):
    result = run_experiment(table1_breakdown)
    rows = {r["component"]: r for r in result.rows}
    # The paper's structural claims: EMT dominates MLP without a cache and
    # the cache recovers most of it (Table 1: 113.3 → 20.7 ms vs 10.6 ms).
    assert rows["EMT (no cache)"]["time_ms"] > 5 * rows["MLP (dense+sample)"]["time_ms"]
    assert rows["EMT (w/ cache)"]["time_ms"] < rows["EMT (no cache)"]["time_ms"] / 2
