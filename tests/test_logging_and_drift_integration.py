"""Logging helpers + the drift→refresh integration loop."""

import logging

import numpy as np
import pytest

from repro.core.embedding_layer import EmbeddingLayerConfig, UGacheEmbeddingLayer
from repro.core.solver import SolverConfig
from repro.dlr.drift import DriftingTrace
from repro.dlr.workload import DlrWorkload
from repro.utils.logging import enable_console_logging, get_logger


class TestLogging:
    def test_namespaced(self):
        assert get_logger("core.solver").name == "repro.core.solver"
        assert get_logger("").name == "repro"
        assert get_logger("repro.x").name == "repro.x"

    def test_null_handler_by_default(self):
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)

    def test_enable_console_idempotent(self):
        first = enable_console_logging(logging.DEBUG)
        second = enable_console_logging(logging.INFO)
        assert first is second
        logging.getLogger("repro").removeHandler(first)

    def test_solver_logs_debug(self, platform_a, caplog):
        from repro.core.solver import solve_policy
        from repro.utils.stats import zipf_pmf

        with caplog.at_level(logging.DEBUG, logger="repro.core.solver"):
            solve_policy(
                platform_a,
                zipf_pmf(200, 1.0) * 100,
                20,
                64,
                SolverConfig(coarse_block_frac=0.1),
            )
        assert any("solved server-a" in rec.message for rec in caplog.records)


class TestDriftRefreshLoop:
    """The §7.2 operational loop: serve → drift → refresh → serve."""

    def test_week_of_drift_with_refreshes(self, platform_a, rng):
        base = DlrWorkload(
            table_sizes=(600, 400), alpha=1.3, batch_size=128, num_gpus=4, seed=0
        )
        table = rng.standard_normal((base.num_entries, 8)).astype(np.float32)
        layer = UGacheEmbeddingLayer(
            platform_a,
            table,
            base.hotness(),
            EmbeddingLayerConfig(
                cache_ratio=0.1, solver=SolverConfig(coarse_block_frac=0.05)
            ),
        )
        trace = DriftingTrace(base=base, churn=0.4, num_days=4, seed=2)
        refreshes = 0
        for day in trace.days():
            # Serve a batch and verify correctness against the table.
            batch = day.take_batches(1, seed=11)[0]
            values, report = layer.extract(batch)
            for v, keys in zip(values, batch):
                assert np.array_equal(v, table[keys])
            assert report.time > 0
            # Nightly: hand the day's analytic hotness to the refresher.
            outcome = layer.refresh(day.hotness())
            refreshes += int(outcome.triggered)
        # Heavy churn must trigger at least one refresh across the week.
        assert refreshes >= 1

    def test_refresh_restores_hit_rate(self, platform_a, rng):
        base = DlrWorkload(
            table_sizes=(1000,), alpha=1.5, batch_size=256, num_gpus=4, seed=0
        )
        table = rng.standard_normal((1000, 8)).astype(np.float32)
        layer = UGacheEmbeddingLayer(
            platform_a,
            table,
            base.hotness(),
            EmbeddingLayerConfig(
                cache_ratio=0.08, solver=SolverConfig(coarse_block_frac=0.05)
            ),
        )
        from repro.core.evaluate import hit_rates

        drifted = DlrWorkload(
            table_sizes=(1000,), alpha=1.5, batch_size=256, num_gpus=4, seed=77
        )
        before = hit_rates(platform_a, layer.placement, drifted.hotness()).global_hit
        outcome = layer.refresh(drifted.hotness())
        after = hit_rates(platform_a, layer.placement, drifted.hotness()).global_hit
        assert outcome.triggered
        assert after > before
