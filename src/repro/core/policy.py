"""Cache placements and the heuristic policies UGache is compared against.

A :class:`Placement` says which entries each GPU caches.  The policies here
reproduce the baselines of §3.1/§8.1:

* :func:`replication_policy` — every GPU independently caches the hottest
  entries (HPS / GNNLab / RepU);
* :func:`partition_policy` — the hottest ``capacity × G`` entries are
  spread round-robin, one copy each (WholeGraph / SOK / PartU);
* :func:`clique_partition_policy` — partition within fully-connected
  cliques, replicate across cliques (Quiver's fix for DGX-1's unconnected
  pairs);
* :func:`hot_replicate_warm_partition_policy` — the heuristic of Song &
  Jiang [39]: replicate the hottest prefix everywhere, partition the next
  warm band, searching the split that minimizes estimated extraction time.

UGache's own placement comes from :mod:`repro.core.solver`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.platform import Platform


@dataclass(frozen=True)
class Placement:
    """Per-GPU cached entry sets over a universe of ``num_entries``.

    ``per_gpu[i]`` is a 1-D array of entry ids cached on GPU ``i``; host
    memory implicitly stores every entry (the fallback location).
    """

    num_entries: int
    per_gpu: tuple[np.ndarray, ...]

    def __post_init__(self) -> None:
        frozen = []
        for i, ids in enumerate(self.per_gpu):
            arr = np.asarray(ids, dtype=np.int64)
            if arr.ndim != 1:
                raise ValueError(f"GPU {i}: entry ids must be 1-D")
            if arr.size:
                if arr.min() < 0 or arr.max() >= self.num_entries:
                    raise ValueError(f"GPU {i}: entry id out of range")
                if len(np.unique(arr)) != len(arr):
                    raise ValueError(f"GPU {i}: duplicate cached entries")
            arr = arr.copy()
            arr.setflags(write=False)
            frozen.append(arr)
        object.__setattr__(self, "per_gpu", tuple(frozen))

    @property
    def num_gpus(self) -> int:
        return len(self.per_gpu)

    def cached_counts(self) -> list[int]:
        return [len(ids) for ids in self.per_gpu]

    def storage_matrix(self) -> np.ndarray:
        """Boolean ``(G, num_entries)`` matrix: entry cached on GPU?"""
        mat = np.zeros((self.num_gpus, self.num_entries), dtype=bool)
        for i, ids in enumerate(self.per_gpu):
            mat[i, ids] = True
        return mat

    def distinct_cached(self) -> int:
        """Number of distinct entries cached anywhere (global coverage)."""
        if not self.per_gpu:
            return 0
        return int(len(np.unique(np.concatenate(self.per_gpu))))

    def replication_factor(self) -> float:
        """Average copies per cached entry (1 = pure partition)."""
        distinct = self.distinct_cached()
        if distinct == 0:
            return 0.0
        return sum(self.cached_counts()) / distinct

    def validate_capacity(self, capacity_entries: int) -> None:
        """Raise if any GPU exceeds its entry budget."""
        for i, ids in enumerate(self.per_gpu):
            if len(ids) > capacity_entries:
                raise ValueError(
                    f"GPU {i} caches {len(ids)} entries, capacity {capacity_entries}"
                )


def _hot_order(hotness: np.ndarray) -> np.ndarray:
    return np.argsort(-np.asarray(hotness, dtype=np.float64), kind="stable")


def replication_policy(
    hotness: np.ndarray, capacity_entries: int, num_gpus: int
) -> Placement:
    """Every GPU caches the globally hottest ``capacity_entries`` entries."""
    if capacity_entries < 0:
        raise ValueError("capacity must be non-negative")
    top = _hot_order(hotness)[:capacity_entries]
    return Placement(
        num_entries=len(hotness), per_gpu=tuple(top for _ in range(num_gpus))
    )


def partition_policy(
    hotness: np.ndarray, capacity_entries: int, num_gpus: int
) -> Placement:
    """Hottest ``capacity × G`` entries, one copy each, spread round-robin.

    Round-robin by hotness rank statistically balances each GPU's share of
    hot traffic, as the systems in §3.1 do via hashing.
    """
    if capacity_entries < 0:
        raise ValueError("capacity must be non-negative")
    n = len(hotness)
    top = _hot_order(hotness)[: min(capacity_entries * num_gpus, n)]
    shards = tuple(top[i::num_gpus] for i in range(num_gpus))
    return Placement(num_entries=n, per_gpu=shards)


def clique_partition_policy(
    hotness: np.ndarray,
    capacity_entries: int,
    platform: Platform,
) -> Placement:
    """Partition within each fully-connected clique; cliques replicate.

    On DGX-1 the two quads cannot read each other over NVLink, so Quiver
    gives each quad an independent partition cache covering the hottest
    ``capacity × clique_size`` entries.
    """
    n = len(hotness)
    order = _hot_order(hotness)
    per_gpu: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * platform.num_gpus
    for clique in platform.topology.cliques():
        top = order[: min(capacity_entries * len(clique), n)]
        for rank, gpu in enumerate(sorted(clique)):
            per_gpu[gpu] = top[rank :: len(clique)]
    return Placement(num_entries=n, per_gpu=tuple(per_gpu))


def hot_replicate_warm_partition_policy(
    hotness: np.ndarray,
    capacity_entries: int,
    num_gpus: int,
    replicate_fraction: float,
) -> Placement:
    """Replicate the hottest prefix on every GPU, partition the warm band.

    ``replicate_fraction`` ∈ [0, 1] is the share of each GPU's capacity
    spent on replicas; the remainder holds this GPU's shard of the warm
    band.  ``replicate_fraction=1`` degenerates to replication and ``0``
    to partition.
    """
    if not 0 <= replicate_fraction <= 1:
        raise ValueError("replicate_fraction must be in [0, 1]")
    n = len(hotness)
    order = _hot_order(hotness)
    rep_count = int(round(replicate_fraction * capacity_entries))
    part_per_gpu = capacity_entries - rep_count
    rep = order[: min(rep_count, n)]
    warm = order[len(rep) : min(len(rep) + part_per_gpu * num_gpus, n)]
    per_gpu = tuple(
        np.concatenate([rep, warm[i::num_gpus]]) for i in range(num_gpus)
    )
    return Placement(num_entries=n, per_gpu=per_gpu)


def empty_placement(num_entries: int, num_gpus: int) -> Placement:
    """No GPU caches anything; all extraction goes to host (the no-cache case)."""
    return Placement(
        num_entries=num_entries,
        per_gpu=tuple(np.empty(0, dtype=np.int64) for _ in range(num_gpus)),
    )
