"""Timing models for the three extraction mechanisms of §3.2 / §5.

Given, for each destination GPU, the number of bytes it must pull from every
source location this batch, these functions compute the batch extraction
time under:

* :func:`factored_extraction` — UGache's FEM (§5.3): cores statically
  dedicated per source within link tolerance, local extraction padding the
  ragged non-local groups.  Matches the solver's time estimate (§6.2) by
  construction.
* :func:`naive_peer_extraction` — WholeGraph-style zero-copy peer access
  with random dispatch; suffers the congestion of Figure 7 (modelled by
  :mod:`repro.sim.congestion`).
* :func:`message_extraction` — SOK-style buffered AllToAll exchange; pays
  extra gather/reorder passes and per-stage launch overheads but uses links
  efficiently during the exchange itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.hardware.platform import HOST, Platform
from repro.hardware.topology import TopologyKind
from repro.sim.congestion import CongestionModel, solve_congested_extraction


class Mechanism(enum.Enum):
    """Cross-GPU embedding extraction mechanisms."""

    FACTORED = "factored"
    PEER_NAIVE = "peer"
    MESSAGE = "message"


@dataclass(frozen=True)
class GpuDemand:
    """Bytes one destination GPU must extract from each source this batch."""

    dst: int
    volumes: dict[int, float]

    def __post_init__(self) -> None:
        for src, vol in self.volumes.items():
            if vol < 0:
                raise ValueError(f"negative volume {vol} for source {src}")

    @property
    def total_bytes(self) -> float:
        return float(sum(self.volumes.values()))

    def volume(self, src: int) -> float:
        return float(self.volumes.get(src, 0.0))

    @property
    def nonlocal_sources(self) -> list[int]:
        return [s for s, v in self.volumes.items() if s != self.dst and v > 0]


@dataclass(frozen=True)
class GpuExtractionReport:
    """Per-destination outcome of one simulated batch extraction."""

    dst: int
    mechanism: Mechanism
    time: float
    time_by_source: dict[int, float]
    volumes: dict[int, float]
    cores_by_source: dict[int, float] = field(default_factory=dict)
    stage_times: dict[str, float] = field(default_factory=dict)

    def volume_local(self) -> float:
        return float(self.volumes.get(self.dst, 0.0))

    def volume_host(self) -> float:
        """Bytes pulled from the backing chain (all tiers; ids are < 0)."""
        return float(sum(v for s, v in self.volumes.items() if s < 0))

    def volume_tier(self, src: int) -> float:
        """Bytes pulled from one specific backing tier."""
        return float(self.volumes.get(src, 0.0))

    def volume_remote(self) -> float:
        return float(
            sum(v for s, v in self.volumes.items() if s != self.dst and s >= 0)
        )


# ----------------------------------------------------------------------
# Core dedication (§5.3)
# ----------------------------------------------------------------------
def core_dedication(
    platform: Platform, dst: int, active_sources: list[int]
) -> dict[int, int]:
    """UGache's static core split for GPU ``dst`` (§5.3).

    Host gets its small tolerance first ("a small number of cores for
    host").  The remaining cores are sliced across remote GPUs by link
    bandwidth ratio on hard-wired platforms, or equally on switch
    platforms (abstracting the switch into a fully connected graph so each
    reader claims a 1/(N-1) non-overlapping share).  Every remaining core
    — and each dedicated core once its group drains — serves local
    extraction, so local is not listed here.
    """
    total = platform.gpu.num_cores
    dedication: dict[int, int] = {}
    backing = [s for s in active_sources if platform.is_backing(s)]
    remotes = [
        s for s in active_sources if s != dst and not platform.is_backing(s)
    ]
    # Every backing tier is HOST-like: a small dedicated share bounded by
    # the tier's link tolerance (a slower tier needs even fewer cores to
    # saturate, so the bound tightens on its own).
    for src in backing:
        dedication[src] = min(platform.tolerance(dst, src), total // 4)

    remaining = total - sum(dedication.get(s, 0) for s in backing)
    if remotes:
        if platform.topology.kind is TopologyKind.SWITCH:
            # Equal split across *all* peers keeps per-source claims at
            # outbound/(N-1) even when only a few have traffic this batch.
            share = remaining // (platform.num_gpus - 1)
            for src in remotes:
                dedication[src] = max(1, share)
        else:
            weights = {src: platform.bandwidth(dst, src) for src in remotes}
            total_weight = sum(weights.values())
            if total_weight <= 0:
                # Every remote link is dead or unknown (a degraded
                # platform, a corrupt route): split evenly rather than
                # divide by zero — the extractor re-normalizes anyway.
                for src in remotes:
                    dedication[src] = max(1, remaining // len(remotes))
            else:
                for src in remotes:
                    dedication[src] = max(
                        1, int(remaining * weights[src] / total_weight)
                    )
    return dedication


# ----------------------------------------------------------------------
# Factored extraction (§5.3)
# ----------------------------------------------------------------------
def factored_extraction(
    platform: Platform,
    demand: GpuDemand,
    local_padding: bool = True,
) -> GpuExtractionReport:
    """Batch time under UGache's factored extraction mechanism.

    Each non-local group ``j`` runs on its dedicated cores at
    ``min(cores_j * per_core_bw, B_j)``; the local group runs at low
    priority on every otherwise-idle core.  With padding, the batch time
    is the larger of the slowest group and the work-conservation bound
    ``(sum of busy core-seconds) / num_cores`` — exactly the Extractor
    estimate the solver optimizes (§6.2).  Without padding (ablation),
    local extraction waits for all non-local groups to finish.
    """
    gpu = platform.gpu
    dedication = core_dedication(platform, demand.dst, list(demand.volumes))
    time_by_source: dict[int, float] = {}
    cores_by_source: dict[int, float] = {}
    busy_core_seconds = 0.0
    slowest_group = 0.0

    for src in demand.nonlocal_sources + ([HOST] if demand.volume(HOST) > 0 else []):
        if src in time_by_source:
            continue
        vol = demand.volume(src)
        if vol <= 0:
            continue
        cores = dedication.get(src, 1)
        link_bw = platform.bandwidth(demand.dst, src)
        rate = min(cores * gpu.per_core_bandwidth, link_bw)
        # Backing tiers pay their fixed access latency once per batched
        # group (0 for DRAM, so single-tier pricing is unchanged).
        group_time = vol / rate + platform.tier_latency(src)
        time_by_source[src] = group_time
        cores_by_source[src] = cores
        # Cores beyond the link's tolerance would stall; UGache never
        # dedicates them, but guard the accounting anyway.
        busy = min(cores, platform.tolerance(demand.dst, src))
        busy_core_seconds += busy * group_time
        slowest_group = max(slowest_group, group_time)

    local_vol = demand.volume(demand.dst)
    local_core_seconds = local_vol / gpu.per_core_bandwidth
    if local_padding:
        total = max(
            slowest_group,
            (busy_core_seconds + local_core_seconds) / gpu.num_cores,
        )
    else:
        total = slowest_group + local_vol / gpu.local_bandwidth
    if local_vol > 0:
        time_by_source[demand.dst] = local_core_seconds / gpu.num_cores
        cores_by_source[demand.dst] = gpu.num_cores

    return GpuExtractionReport(
        dst=demand.dst,
        mechanism=Mechanism.FACTORED,
        time=float(total),
        time_by_source=time_by_source,
        volumes=dict(demand.volumes),
        cores_by_source=cores_by_source,
    )


# ----------------------------------------------------------------------
# Naive peer extraction (WholeGraph-style, §5.2)
# ----------------------------------------------------------------------
def naive_peer_extraction(
    platform: Platform,
    demand: GpuDemand,
    readers_per_source: dict[int, int] | None = None,
    congestion: CongestionModel | None = None,
) -> GpuExtractionReport:
    """Batch time under unorganized zero-copy peer extraction.

    ``readers_per_source`` tells the switch-collision model how many GPUs
    are simultaneously pulling from each source (data-parallel execution
    makes this ``G - 1`` for every GPU source under a partition policy).
    """
    gpu = platform.gpu
    readers = readers_per_source or {}
    peaks: dict[int, float] = {}
    pressure: dict[int, float] = {}
    for src, vol in demand.volumes.items():
        if vol <= 0:
            continue
        if src == demand.dst or platform.is_backing(src):
            peaks[src] = platform.bandwidth(demand.dst, src)
            pressure[src] = 1.0
        elif platform.topology.kind is TopologyKind.SWITCH:
            n_readers = max(1, readers.get(src, 1))
            peaks[src] = platform.topology.outbound_bandwidth(src) / n_readers
            pressure[src] = float(n_readers)
        else:
            peaks[src] = platform.bandwidth(demand.dst, src)
            pressure[src] = 1.0

    outcome = solve_congested_extraction(
        volumes={s: v for s, v in demand.volumes.items() if v > 0},
        peak_bandwidth=peaks,
        per_core_bandwidth=gpu.per_core_bandwidth,
        num_cores=gpu.num_cores,
        model=congestion,
        collision_pressure=pressure,
    )
    time_by_source = {
        s: cs / gpu.num_cores for s, cs in outcome.core_seconds.items()
    }
    return GpuExtractionReport(
        dst=demand.dst,
        mechanism=Mechanism.PEER_NAIVE,
        time=outcome.total_time,
        time_by_source=time_by_source,
        volumes=dict(demand.volumes),
        cores_by_source=outcome.cores_by_source,
    )


# ----------------------------------------------------------------------
# Message-based extraction (SOK-style AllToAll, §3.2)
# ----------------------------------------------------------------------
#: Fixed per-stage cost of launching/synchronizing a collective round.
MESSAGE_STAGE_OVERHEAD = 30e-6


def message_extraction(
    platform: Platform,
    demands: list[GpuDemand],
    congestion: CongestionModel | None = None,
) -> list[GpuExtractionReport]:
    """Batch times under buffered AllToAll message passing.

    Stages (serialized, as NCCL-based embedding exchanges are):

    1. *gather*: every GPU reads the entries requested by all peers from
       its local shard and packs them into contiguous send buffers — one
       gather pass plus one sequential write pass over the HBM;
    2. *exchange*: AllToAll over the interconnect; collectives schedule
       transfers explicitly, so links run at full (uncongested) bandwidth
       and the stage ends when the busiest endpoint finishes;
    3. *reorder*: each GPU scatters received buffers back into the
       requested key order — again two HBM passes;
    4. host-resident entries are fetched directly over PCIe, overlapping
       the exchange stage.

    All GPUs synchronize at each collective, so every GPU reports the same
    batch time (the max over endpoints).
    """
    if not demands:
        return []
    gpu = platform.gpu
    dsts = [d.dst for d in demands]
    if len(set(dsts)) != len(dsts):
        raise ValueError("duplicate destination GPUs in demand list")

    # Bytes GPU j must send to GPU i: demands[i].volumes[j].
    sent_by: dict[int, float] = {g: 0.0 for g in platform.gpu_ids}
    recv_by: dict[int, float] = {g: 0.0 for g in platform.gpu_ids}
    pair_bytes: dict[tuple[int, int], float] = {}
    host_by: dict[int, float] = {g: 0.0 for g in platform.gpu_ids}
    #: per-dst seconds spent on backing-tier fetches (tier-aware: each
    #: tier's bytes stream at that tier's bandwidth plus its latency).
    backing_seconds_by: dict[int, float] = {g: 0.0 for g in platform.gpu_ids}
    local_by: dict[int, float] = {g: 0.0 for g in platform.gpu_ids}
    for d in demands:
        for src, vol in d.volumes.items():
            if vol <= 0:
                continue
            if platform.is_backing(src):
                host_by[d.dst] += vol
                backing_seconds_by[d.dst] += (
                    vol / platform.bandwidth(d.dst, src)
                    + platform.tier_latency(src)
                )
            elif src == d.dst:
                local_by[d.dst] += vol
            else:
                sent_by[src] += vol
                recv_by[d.dst] += vol
                pair_bytes[(d.dst, src)] = pair_bytes.get((d.dst, src), 0.0) + vol

    # Stage 1: gather into send buffers (plus each GPU's local entries,
    # which message-based systems also route through the buffer).
    gather_time = max(
        2.0 * (sent_by[g] + local_by[g]) / gpu.local_bandwidth
        for g in platform.gpu_ids
    )

    # Stage 2: AllToAll exchange.
    if platform.topology.kind is TopologyKind.SWITCH:
        out_bw = platform.topology.outbound_bandwidth(0)
        exchange_time = max(
            max(sent_by[g] / out_bw, recv_by[g] / out_bw) for g in platform.gpu_ids
        )
    else:
        exchange_time = 0.0
        for (dst, src), vol in pair_bytes.items():
            bw = platform.peak_pair_bandwidth(dst, src)
            if bw <= 0:
                # Unconnected pair: the collective routes through PCIe.
                bw = platform.pcie_bandwidth
            exchange_time = max(exchange_time, vol / bw)

    # Stage 4 overlaps stage 2.
    host_time = max(
        (backing_seconds_by[g] for g in platform.gpu_ids), default=0.0
    )
    exchange_time = max(exchange_time, host_time)

    # Stage 3: reorder received buffers (remote + local + host entries all
    # pass through the output reordering).
    reorder_time = max(
        2.0 * (recv_by[g] + local_by[g] + host_by[g]) / gpu.local_bandwidth
        for g in platform.gpu_ids
    )

    total = (
        gather_time + exchange_time + reorder_time + 3 * MESSAGE_STAGE_OVERHEAD
    )
    reports = []
    for d in demands:
        stage_times = {
            "gather": gather_time,
            "exchange": exchange_time,
            "reorder": reorder_time,
        }
        time_by_source = {
            src: (vol / d.total_bytes) * total if d.total_bytes else 0.0
            for src, vol in d.volumes.items()
        }
        reports.append(
            GpuExtractionReport(
                dst=d.dst,
                mechanism=Mechanism.MESSAGE,
                time=float(total),
                time_by_source=time_by_source,
                volumes=dict(d.volumes),
                stage_times=stage_times,
            )
        )
    return reports
