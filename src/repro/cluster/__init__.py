"""Multi-node sharded cache cluster with replicated failover.

The step from "one multi-GPU box" to "a cluster of cache servers behind a
fan-out front-end" (the ROADMAP's first open item, and the production
shape of HugeCTR's inference parameter server):

* :mod:`repro.cluster.ring` — consistent-hash keyspace partitioning with
  R-way replication (vectorized batch resolution);
* :mod:`repro.cluster.placement` — the solver-driven alternative: a
  node-level placement stage above the per-GPU MILP;
* :mod:`repro.cluster.node` — one cache server: a full single-box UGache
  stack whose GPUs cache only its shard;
* :mod:`repro.cluster.rpc` — the inter-node tier: latency/bandwidth
  pricing, per-call timeout, seeded-jitter retry, replica hedging;
* :mod:`repro.cluster.frontend` — fan-out/gather with per-node circuit
  breakers, replica failover, host fallback, partial responses;
* :mod:`repro.cluster.soak` — node-kill chaos with goodput gated *during*
  the failover window, not just after recovery.
"""

from repro.cluster.frontend import ClusterConfig, ClusterFrontend, ClusterResponse
from repro.cluster.node import CacheNode
from repro.cluster.placement import (
    NodePlacement,
    analyze_node_loss,
    solve_node_placement,
)
from repro.cluster.ring import HashRing, hash_keys
from repro.cluster.rpc import RpcConfig, attempt_profile
from repro.cluster.soak import FAILOVER_GOODPUT_FLOOR, run_cluster_soak

__all__ = [
    "CacheNode",
    "ClusterConfig",
    "ClusterFrontend",
    "ClusterResponse",
    "FAILOVER_GOODPUT_FLOOR",
    "HashRing",
    "NodePlacement",
    "RpcConfig",
    "analyze_node_loss",
    "attempt_profile",
    "hash_keys",
    "run_cluster_soak",
    "solve_node_placement",
]
