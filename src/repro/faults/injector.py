"""Deterministic fault injector: realizes a :class:`FaultPlan` against a
live cache over (simulated) time.

Standing faults (GPU down, degraded link, host stall) are pure *health*
— :meth:`FaultInjector.advance` just flattens them into the
:class:`~repro.faults.spec.HealthView` the extractor and simulators
consult.  One-shot faults (corrupted location-table slots) mutate state
exactly once at onset, with seeded randomness, so two runs of the same
plan poison the same entries.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.faults.spec import FaultKind, FaultPlan, FaultSpec, HealthView
from repro.obs import get_registry
from repro.utils.logging import get_logger
from repro.utils.rng import make_rng

logger = get_logger("faults.injector")

#: Source ids planted by corruption: far outside any real GPU id so the
#: degraded router (and ``LocationTable``'s bounds check) must notice.
CORRUPT_SOURCE_BASE = 0x4000


class FaultInjector:
    """Drives one :class:`FaultPlan` against a cache's location state.

    The injector is the only component that *writes* faults; everything
    else reads health views.  ``cache`` may be any object exposing the
    :class:`~repro.core.cache.MultiGpuEmbeddingCache` ``source_map`` /
    ``num_entries`` surface (duck-typed to keep this module free of core
    imports).
    """

    def __init__(self, plan: FaultPlan, cache=None) -> None:
        self._plan = plan
        self._cache = cache
        self._applied: set[int] = set()
        self._now = 0.0
        # Recurring bit-rot faults keep per-fault event state: the seeded
        # rng and the next event time.  Events are consumed in
        # chronological order, so the realized schedule is independent of
        # how often advance() is called.
        self._rot_state: dict[int, list] = {}
        # advance() mutates _now/_applied and (for one-shots) the cache's
        # source map; per-GPU serving workers may all drive time forward,
        # so realize faults under a lock.
        self._lock = threading.Lock()

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    @property
    def now(self) -> float:
        return self._now

    def attach(self, cache) -> None:
        """Point the injector at the cache whose state one-shots mutate."""
        self._cache = cache

    def health(self, now: float | None = None) -> HealthView:
        """The health view at ``now`` (defaults to the last advanced time)."""
        return self._plan.health_at(self._now if now is None else now)

    def advance(self, now: float) -> HealthView:
        """Move time forward, realizing any one-shot faults that fired.

        Returns the health view at ``now``.  Idempotent per fault: a
        one-shot is applied the first time ``now`` passes its onset.
        """
        reg = get_registry()
        with self._lock:
            self._now = max(self._now, now)
            for idx, fault in enumerate(self._plan.faults):
                if fault.kind is FaultKind.BIT_ROT:
                    if now < fault.onset:
                        continue
                    flips = self._advance_bit_rot(idx, fault, now)
                    if idx not in self._applied:
                        self._applied.add(idx)
                        reg.counter(
                            "faults.injected", kind=fault.kind.value
                        ).inc()
                        logger.warning(
                            "fault active at t=%.2f: bit-rot at %.3g "
                            "events/s", now, fault.rate,
                        )
                    if flips:
                        reg.counter("faults.bit_rot.flips").inc(flips)
                    continue
                if idx in self._applied or now < fault.onset:
                    continue
                if fault.kind is FaultKind.CORRUPT_SLOT:
                    self._applied.add(idx)
                    corrupted = self._corrupt_source_map(fault)
                    reg.counter(
                        "faults.injected", kind=fault.kind.value
                    ).inc()
                    reg.counter("faults.corrupted_slots").inc(corrupted)
                    logger.warning(
                        "fault injected at t=%.2f: corrupted %d location "
                        "slots referencing GPU %d", now, corrupted, fault.gpu,
                    )
                elif fault.onset <= now:
                    # Standing faults are realized through health views;
                    # count each once at onset so the timeline shows when
                    # they hit.
                    self._applied.add(idx)
                    reg.counter("faults.injected", kind=fault.kind.value).inc()
                    logger.warning(
                        "fault active at t=%.2f: %s (severity %.2f)",
                        now, fault.kind.value, fault.severity,
                    )
        view = self._plan.health_at(now)
        if reg.enabled:
            reg.gauge("faults.active").set(len(self._plan.active_at(now)))
        return view

    def _advance_bit_rot(self, idx: int, fault: FaultSpec, now: float) -> int:
        """Apply every bit-rot event due by ``now``; returns flips applied.

        The event schedule (exponential inter-arrivals at ``fault.rate``
        from onset to clear) and each event's victim are drawn from one
        seeded rng in event order, so the realized corruption is a pure
        function of the plan — not of the cadence ``advance`` is called
        at.  Stored slot checksums are deliberately *not* updated: the
        rot is silent, and only the scrubber's cross-check against the
        host ground truth (or a read-path guard) can surface it.
        """
        if self._cache is None:
            return 0
        state = self._rot_state.get(idx)
        if state is None:
            rng = make_rng(
                self._plan.seed * 1_000_003 + fault.seed * 101 + 7
            )
            state = [rng, fault.onset + float(rng.exponential(1.0 / fault.rate))]
            self._rot_state[idx] = state
        rng = state[0]
        end = min(now, fault.clears_at)
        flips = 0
        writing = getattr(self._cache, "writing", None)
        guard = writing() if writing is not None else None
        if guard is not None:
            guard.__enter__()
        try:
            while state[1] <= end:
                flips += self._flip_one_byte(rng, fault)
                state[1] += float(rng.exponential(1.0 / fault.rate))
        finally:
            if guard is not None:
                guard.__exit__(None, None, None)
        if flips:
            logger.warning(
                "bit-rot: %d byte flip(s) realized by t=%.2f", flips, now
            )
        return flips

    def _flip_one_byte(self, rng, fault: FaultSpec) -> int:
        """Flip one seeded bit in one cached slot's raw bytes."""
        store_of = getattr(self._cache, "store", None)
        source_map = getattr(self._cache, "source_map", None)
        if store_of is None or source_map is None:
            return 0
        num_gpus = source_map.shape[0]
        gpu = fault.gpu if fault.gpu is not None else int(rng.integers(num_gpus))
        store = store_of(gpu)
        cached = np.flatnonzero(store.offset_of >= 0)
        if len(cached) == 0:
            return 0
        entry = int(rng.choice(cached))
        slot = int(store.offset_of[entry])
        row = store.data[slot].view(np.uint8)
        byte = int(rng.integers(row.size))
        bit = int(rng.integers(8))
        row[byte] ^= np.uint8(1 << bit)
        return 1

    def _corrupt_source_map(self, fault: FaultSpec) -> int:
        """Poison seeded random location-table entries pointing at a GPU.

        For every destination GPU, a seeded sample of the entries it
        currently reads from ``fault.gpu`` is rewritten to an out-of-range
        source id; severity scales how many.  Returns slots corrupted.
        """
        if self._cache is None:
            return 0
        source_map = self._cache.source_map
        num_gpus = source_map.shape[0]
        rng = make_rng(self._plan.seed * 1_000_003 + fault.seed * 101 + int(fault.gpu))
        corrupted = 0
        for dst in range(num_gpus):
            victims = np.flatnonzero(source_map[dst] == fault.gpu)
            if len(victims) == 0:
                continue
            count = max(1, int(round(fault.severity * len(victims))))
            picks = rng.choice(victims, size=min(count, len(victims)), replace=False)
            source_map[dst][picks] = CORRUPT_SOURCE_BASE + dst
            corrupted += len(picks)
        return corrupted
