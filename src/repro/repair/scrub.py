"""Anti-entropy scrubber: find silent GPU-cache corruption, quarantine it,
repair it from the cheapest intact replica.

The host table is ground truth (it never rots in this model) and every
entry has a host-side checksum (:attr:`MultiGpuEmbeddingCache.host_checksums`).
A GPU slot is *rotten* when its recomputed content checksum disagrees
with the host's.  The scrubber finds rot two ways:

* the **background scrub loop** — :meth:`CacheScrubber.tick` samples a
  seeded, byte-budgeted slice of one GPU store per tick (round-robin
  across GPUs) and cross-checks recomputed checksums against the host;
* the **read-path guard** — :meth:`CacheScrubber.guard_read` re-checksums
  values as they are served and patches any rotten row from the host
  table before the caller sees it.  The guard is what turns "rot is
  eventually repaired" into "corrupt values are *never served*".

A detected slot is **quarantined** first: every destination GPU whose
location-table route points at the rotten holder is rerouted to
:data:`~repro.hardware.platform.HOST`, so no reader can gather the bad
bytes while repair is pending (extra holdings with a HOST route are
legal per :func:`~repro.core.pipeline.verify_resolution`).  Repair then
copies the true bytes back — from the cheapest intact replica if another
GPU holds the entry (priced with :func:`~repro.core.pipeline.price_demand`,
the same one-pricing-point the whole stack uses), else from the host —
and restores the saved routes.

All scrubber state (quarantine records, repair queue) is mutated only
under the cache's write lock, so the scrub loop, the read guard (called
from per-GPU serving workers), and the Refresher serialize correctly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.checksum import row_checksums
from repro.core.pipeline import price_demand
from repro.hardware.platform import HOST
from repro.obs import get_registry
from repro.sim.mechanisms import GpuDemand
from repro.utils.logging import get_logger
from repro.utils.rng import make_rng

logger = get_logger("repair.scrub")

__all__ = ["CacheScrubber", "ScrubConfig", "ScrubTick"]


@dataclass(frozen=True)
class ScrubConfig:
    """Knobs of the background scrub loop.

    Attributes:
        scan_bytes_per_tick: byte budget one :meth:`CacheScrubber.tick`
            may re-checksum (converted to entries; at least one entry is
            always scanned so tiny budgets still make progress).
        repair_bytes_per_tick: byte budget one tick may spend copying
            true bytes back into quarantined slots; 0 defers all repair
            to :meth:`CacheScrubber.drain`.
        seed: seeds the sampling rng so scrub coverage is replayable.
    """

    scan_bytes_per_tick: int = 16 * 1024
    repair_bytes_per_tick: int = 16 * 1024
    seed: int = 0

    def __post_init__(self) -> None:
        if self.scan_bytes_per_tick < 1:
            raise ValueError("scan budget must be at least one byte")
        if self.repair_bytes_per_tick < 0:
            raise ValueError("repair budget must be non-negative")


@dataclass
class ScrubTick:
    """What one scrub tick did."""

    scanned: int = 0
    mismatches: int = 0
    repaired: int = 0
    repaired_bytes: int = 0
    repair_seconds: float = 0.0


class CacheScrubber:
    """Background anti-entropy loop + read-path guard for one cache.

    ``node`` is an optional label (the cluster soak runs one scrubber per
    :class:`~repro.cluster.node.CacheNode`) threaded onto the
    ``repair.scrub.*`` metrics.
    """

    def __init__(self, cache, config: ScrubConfig | None = None,
                 node: int | None = None) -> None:
        self._cache = cache
        self.config = config or ScrubConfig()
        self._labels = {} if node is None else {"node": str(node)}
        self._rng = make_rng(self.config.seed + 911)
        self._cursor = 0  # round-robin GPU cursor for tick()
        # (gpu, entry) -> dst GPUs whose route was parked at HOST; the
        # repair restores exactly these (and only where still parked).
        self._quarantined: dict[tuple[int, int], np.ndarray] = {}
        self._repair_queue: deque[tuple[int, int]] = deque()
        self._entry_cost: dict[tuple[int, int], float] = {}
        self.scanned_total = 0
        self.mismatches_total = 0
        self.repaired_total = 0
        self.repaired_bytes_total = 0
        self.read_repairs_total = 0
        self.repair_seconds_total = 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def quarantine_depth(self) -> int:
        """Slots detected rotten and not yet repaired (watchdog signal)."""
        return len(self._quarantined)

    @property
    def has_pending(self) -> bool:
        return bool(self._repair_queue)

    # ------------------------------------------------------------------
    # Background loop
    # ------------------------------------------------------------------
    def tick(self, now: float = 0.0) -> ScrubTick:
        """One scrub round: sample-scan one GPU store, then spend the
        repair budget on the quarantine queue.  Deterministic given the
        config seed and call sequence."""
        del now  # time is the caller's clock; the scrubber is stateless in it
        tick = ScrubTick()
        cache = self._cache
        num_gpus = cache.platform.num_gpus
        gpu = self._cursor % num_gpus
        self._cursor += 1
        entry_bytes = max(1, cache.entry_bytes)
        scan_budget = max(1, self.config.scan_bytes_per_tick // entry_bytes)
        with cache.writing():
            store = cache.store(gpu)
            cached = store.cached_entries()
            if len(cached):
                k = min(scan_budget, len(cached))
                picks = self._rng.choice(len(cached), size=k, replace=False)
                entries = cached[np.sort(picks)]
                slots = store.offset_of[entries]
                sums = row_checksums(store.data[slots])
                bad = entries[sums != cache.host_checksums[entries]]
                tick.scanned = int(k)
                tick.mismatches = int(len(bad))
                for entry in bad:
                    self._quarantine_locked(gpu, int(entry))
            repair_budget = self.config.repair_bytes_per_tick // entry_bytes
            self._repair_some_locked(repair_budget, tick)
        self.scanned_total += tick.scanned
        self.mismatches_total += tick.mismatches
        reg = get_registry()
        if reg.enabled:
            reg.counter("repair.scrub.scanned_slots", **self._labels).inc(
                tick.scanned
            )
            if tick.mismatches:
                reg.counter("repair.scrub.mismatches", **self._labels).inc(
                    tick.mismatches
                )
            reg.gauge("repair.scrub.quarantine_depth", **self._labels).set(
                self.quarantine_depth
            )
        if tick.mismatches:
            logger.warning(
                "scrub: %d rotten slot(s) on GPU %d quarantined "
                "(%d outstanding)", tick.mismatches, gpu, self.quarantine_depth,
            )
        return tick

    def scrub_all(self) -> ScrubTick:
        """Full-coverage scan of every GPU store plus a complete repair
        drain; the end-of-run reconciliation gate."""
        tick = ScrubTick()
        cache = self._cache
        with cache.writing():
            for gpu in range(cache.platform.num_gpus):
                store = cache.store(gpu)
                entries = store.cached_entries()
                if len(entries) == 0:
                    continue
                slots = store.offset_of[entries]
                sums = row_checksums(store.data[slots])
                bad = entries[sums != cache.host_checksums[entries]]
                tick.scanned += int(len(entries))
                tick.mismatches += int(len(bad))
                for entry in bad:
                    self._quarantine_locked(gpu, int(entry))
            self._repair_some_locked(None, tick)
        self.scanned_total += tick.scanned
        self.mismatches_total += tick.mismatches
        reg = get_registry()
        if reg.enabled:
            reg.counter("repair.scrub.scanned_slots", **self._labels).inc(
                tick.scanned
            )
            if tick.mismatches:
                reg.counter("repair.scrub.mismatches", **self._labels).inc(
                    tick.mismatches
                )
            reg.gauge("repair.scrub.quarantine_depth", **self._labels).set(
                self.quarantine_depth
            )
        return tick

    def drain(self) -> int:
        """Repair every quarantined slot, budget-free; returns repairs."""
        tick = ScrubTick()
        with self._cache.writing():
            self._repair_some_locked(None, tick)
        return tick.repaired

    # ------------------------------------------------------------------
    # Read-path guard
    # ------------------------------------------------------------------
    def guard_read(
        self, dst: int, keys: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, int]:
        """Verify served ``values`` row-by-row; patch and quarantine rot.

        ``values`` must be row-aligned with ``keys`` (what an extraction
        returned for them on destination ``dst``).  Rotten rows are
        replaced in place from the host table (bit-exact) and their
        source slots quarantined, so the caller serves only true bytes.
        Returns ``(values, rows_patched)``.
        """
        if len(keys) == 0:
            return values, 0
        cache = self._cache
        sums = row_checksums(values)
        bad = np.flatnonzero(sums != cache.host_checksums[keys])
        if len(bad) == 0:
            return values, 0
        bad_keys = np.asarray(keys)[bad]
        values[bad] = cache.host_gather(bad_keys)
        with cache.writing():
            srcs = cache.source_map[dst][bad_keys]
            for key, src in zip(bad_keys, srcs):
                if 0 <= int(src) < cache.platform.num_gpus:
                    self._quarantine_locked(int(src), int(key))
        patched = int(len(bad))
        self.read_repairs_total += patched
        reg = get_registry()
        if reg.enabled:
            reg.counter("repair.scrub.read_repairs", **self._labels).inc(
                patched
            )
            reg.gauge("repair.scrub.quarantine_depth", **self._labels).set(
                self.quarantine_depth
            )
        logger.warning(
            "read guard: patched %d rotten row(s) served to GPU %d",
            patched, dst,
        )
        return values, patched

    # ------------------------------------------------------------------
    # Quarantine + repair (all under cache.writing())
    # ------------------------------------------------------------------
    def _quarantine_locked(self, gpu: int, entry: int) -> None:
        if (gpu, entry) in self._quarantined:
            return
        cache = self._cache
        source_map = cache.source_map
        dsts = np.flatnonzero(source_map[:, entry] == gpu)
        # Park routes at the entry's backing home: HOST on a single-tier
        # platform, the owning tier of a deeper chain (so the parked route
        # stays a *valid* backing route, not a stale one).
        source_map[dsts, entry] = self._backing_home(entry)
        self._quarantined[(gpu, entry)] = dsts
        self._repair_queue.append((gpu, entry))
        reg = get_registry()
        if reg.enabled:
            reg.counter("repair.scrub.quarantined", **self._labels).inc()

    def _repair_some_locked(
        self, budget_entries: int | None, tick: ScrubTick
    ) -> None:
        """Repair up to ``budget_entries`` queued slots (None = all)."""
        reg = get_registry()
        while self._repair_queue:
            if budget_entries is not None and tick.repaired >= budget_entries:
                break
            gpu, entry = self._repair_queue.popleft()
            seconds = self._repair_one_locked(gpu, entry)
            tick.repaired += 1
            tick.repaired_bytes += self._cache.entry_bytes
            tick.repair_seconds += seconds
            self.repaired_total += 1
            self.repaired_bytes_total += self._cache.entry_bytes
            self.repair_seconds_total += seconds
            if reg.enabled:
                reg.counter("repair.scrub.repaired", **self._labels).inc()
                reg.counter(
                    "repair.scrub.repaired_bytes", **self._labels
                ).inc(self._cache.entry_bytes)

    def _repair_one_locked(self, gpu: int, entry: int) -> float:
        """Copy the true bytes back into one quarantined slot and restore
        its parked routes; returns the priced copy time."""
        cache = self._cache
        dsts = self._quarantined.pop((gpu, entry))
        store = cache.store(gpu)
        slot = int(store.offset_of[entry])
        if slot < 0:
            # Evicted (refresh or node drop) while quarantined: nothing
            # to repair, and the routes were rebuilt by whoever evicted.
            return 0.0
        src, seconds = self._cheapest_intact_source(gpu, entry)
        if src <= HOST:  # any backing tier: the table is the ground truth
            store.data[slot] = cache.host_table[entry]
        else:
            peer = cache.store(src)
            store.data[slot] = peer.data[int(peer.offset_of[entry])]
        store.checksums[slot] = cache.host_checksums[entry]
        # Restore only routes still parked at the backing home — a refresh
        # may have rebuilt the map while the slot sat in quarantine (and a
        # tier move re-points parked routes to the new home, so comparing
        # against the current home is exact).
        if len(dsts):
            col = cache.source_map[dsts, entry]
            back = dsts[col == self._backing_home(entry)]
            cache.source_map[back, entry] = gpu
        return seconds

    def _backing_home(self, entry: int) -> int:
        """The entry's backing source: HOST or its tier-chain home."""
        chain = getattr(self._cache, "tier_chain", None)
        if chain is None:
            return HOST
        return int(chain.home[entry])

    def _cheapest_intact_source(
        self, dst: int, entry: int
    ) -> tuple[int, float]:
        """The cheapest replica whose copy verifies, else the backing home."""
        cache = self._cache
        entry_bytes = float(cache.entry_bytes)
        best_src = self._backing_home(entry)
        best_cost = price_demand(
            cache.platform, GpuDemand(dst=dst, volumes={best_src: entry_bytes})
        ).time
        for g in range(cache.platform.num_gpus):
            if g == dst or (g, entry) in self._quarantined:
                continue
            peer = cache.store(g)
            slot = int(peer.offset_of[entry])
            if slot < 0:
                continue
            if row_checksums(peer.data[slot][None, :])[0] != (
                cache.host_checksums[entry]
            ):
                # The replica is silently rotten too: quarantine it so a
                # later repair (and no reader) touches it.
                self._quarantine_locked(g, entry)
                continue
            cost = self._priced_link(dst, g, entry_bytes)
            if cost < best_cost:
                best_src, best_cost = g, cost
        return best_src, best_cost

    def _priced_link(self, dst: int, src: int, entry_bytes: float) -> float:
        key = (dst, src)
        cost = self._entry_cost.get(key)
        if cost is None:
            cost = price_demand(
                self._cache.platform,
                GpuDemand(dst=dst, volumes={src: entry_bytes}),
            ).time
            self._entry_cost[key] = cost
        return cost
