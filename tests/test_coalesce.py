"""Cross-request coalescing: micro-batcher policy, serve_batch semantics."""

import math

import numpy as np
import pytest

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.extractor import FactoredExtractor
from repro.core.policy import hot_replicate_warm_partition_policy
from repro.hardware.platform import server_a
from repro.obs import MetricsRegistry, use_registry
from repro.serve import (
    BatchingMode,
    CoalesceConfig,
    MicroBatcher,
    RequestStatus,
    ServingRuntime,
    SoakConfig,
    coalesce_keys,
    run_soak,
)
from repro.serve.queueing import BoundedRequestQueue
from repro.sim.event_sim import simulate_coalesced_extraction
from repro.sim.mechanisms import GpuDemand
from repro.utils.rng import make_rng
from repro.utils.stats import zipf_pmf

pytestmark = pytest.mark.serve

N, D = 1200, 8


def _stack(replicate=0.5):
    platform = server_a()
    rng = make_rng(0)
    table = rng.standard_normal((N, D)).astype(np.float32)
    hotness = zipf_pmf(N, 1.1) * 1000
    placement = hot_replicate_warm_partition_policy(
        hotness, N // 8, platform.num_gpus, replicate
    )
    cache = MultiGpuEmbeddingCache(platform, table, placement)
    return platform, table, cache, FactoredExtractor(cache)


def _keys(n=256, seed=1):
    return make_rng(seed).integers(0, N, size=n)


class TestCoalesceConfig:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            CoalesceConfig(max_batch=0)
        with pytest.raises(ValueError):
            CoalesceConfig(linger_seconds=-1.0)

    def test_off_is_default(self):
        assert CoalesceConfig().mode is BatchingMode.OFF


class TestCoalesceKeys:
    def test_union_covers_every_member_key(self):
        _platform, _table, _cache, extractor = _stack()
        runtime = ServingRuntime(extractor)
        requests = [
            runtime.make_request(0, _keys(seed=s), now=0.0) for s in range(4)
        ]
        union, total = coalesce_keys(requests)
        assert total == sum(len(r.keys) for r in requests)
        assert len(np.unique(union)) == len(union)
        for r in requests:
            assert np.isin(r.keys, union).all()

    def test_empty_batch(self):
        union, total = coalesce_keys([])
        assert len(union) == 0 and total == 0


class TestMicroBatcher:
    def _queue(self, capacity=16):
        from repro.serve.queueing import AdmissionConfig

        return BoundedRequestQueue(0, AdmissionConfig(capacity=capacity))

    def _request(self, runtime_like, rid, arrival, deadline=math.inf):
        from repro.serve.request import Request

        return Request(
            request_id=rid,
            gpu=0,
            keys=_keys(seed=rid),
            arrival=arrival,
            deadline=deadline,
        )

    def test_empty_queue_never_flushes(self):
        batcher = MicroBatcher(0, self._queue(), CoalesceConfig(max_batch=4))
        assert batcher.flush_at(0.0) is None

    def test_full_batch_flushes_as_soon_as_gpu_is_free(self):
        queue = self._queue()
        batcher = MicroBatcher(
            0, queue, CoalesceConfig(max_batch=2, linger_seconds=5.0)
        )
        queue.offer(self._request(None, 1, 0.0), 0.0)
        queue.offer(self._request(None, 2, 0.1), 0.1)
        assert batcher.flush_at(0.3) == 0.3  # no linger once full

    def test_partial_batch_lingers_for_company(self):
        queue = self._queue()
        batcher = MicroBatcher(
            0, queue, CoalesceConfig(max_batch=4, linger_seconds=2.0)
        )
        queue.offer(self._request(None, 1, 1.0), 1.0)
        assert batcher.flush_at(0.0) == 3.0  # arrival + linger

    def test_slo_early_flush_beats_linger(self):
        queue = self._queue()
        batcher = MicroBatcher(
            0, queue, CoalesceConfig(max_batch=4, linger_seconds=10.0)
        )
        queue.offer(self._request(None, 1, 0.0, deadline=2.0), 0.0)
        queue.estimator.observe(0.5)
        # tightest deadline (2.0) minus estimate (0.5) < arrival + linger.
        assert batcher.flush_at(0.0) == pytest.approx(1.5)

    def test_take_respects_max_batch_and_fifo(self):
        queue = self._queue()
        batcher = MicroBatcher(0, queue, CoalesceConfig(max_batch=2))
        for i in range(3):
            queue.offer(self._request(None, i + 1, 0.0), 0.0)
        batch = batcher.take(1.0)
        assert [r.request_id for r in batch] == [1, 2]
        assert queue.depth == 1


class TestServeBatch:
    def test_members_get_exact_scattered_values(self):
        _platform, table, _cache, extractor = _stack()
        runtime = ServingRuntime(extractor)
        requests = [
            runtime.make_request(0, _keys(seed=s), now=0.0) for s in range(3)
        ]
        outcome = runtime.serve_batch(requests, now=0.0)
        assert outcome.batch_size == 3
        assert outcome.union_size <= outcome.total_keys
        assert len(outcome.responses) == 3
        for response in outcome.responses:
            assert response.ok
            assert response.coalesced == 3
            assert response.service_time == outcome.service_time
            assert np.array_equal(response.values, table[response.request.keys])

    def test_pricing_is_shared_once(self):
        """Every member completes at the shared extraction's finish."""
        _platform, _table, _cache, extractor = _stack()
        runtime = ServingRuntime(extractor)
        requests = [
            runtime.make_request(1, _keys(seed=s), now=2.0) for s in range(4)
        ]
        outcome = runtime.serve_batch(requests, now=2.0)
        for response in outcome.responses:
            assert response.completed_at == pytest.approx(outcome.completed_at)

    def test_dedup_ratio_reflects_overlap(self):
        _platform, _table, _cache, extractor = _stack()
        runtime = ServingRuntime(extractor)
        keys = _keys(seed=7)
        # identical key sets: the union is one request's unique keys, so
        # the ratio is 4× the single-request duplication factor.
        requests = [runtime.make_request(0, keys, now=0.0) for _ in range(4)]
        outcome = runtime.serve_batch(requests, now=0.0)
        expected = 4 * len(keys) / len(np.unique(keys))
        assert outcome.dedup_ratio == pytest.approx(expected)

    def test_expired_members_dropped_without_extraction(self):
        _platform, _table, _cache, extractor = _stack()
        runtime = ServingRuntime(extractor)
        dead = runtime.make_request(0, _keys(seed=1), now=0.0, deadline=1.0)
        live = runtime.make_request(0, _keys(seed=2), now=0.0)
        outcome = runtime.serve_batch([dead, live], now=5.0)
        statuses = {r.request.request_id: r.status for r in outcome.responses}
        assert statuses[dead.request_id] is RequestStatus.EXPIRED
        assert statuses[live.request_id] is RequestStatus.OK
        # the survivor was served alone.
        assert [r for r in outcome.responses if r.ok][0].coalesced == 1

    def test_batch_size_counts_only_extracted_members(self):
        # Regression: expired-on-arrival members were counted in
        # batch_size despite being dropped before extraction, inflating
        # the soak report's mean_batch_size over batches that did less
        # work than advertised.
        _platform, _table, _cache, extractor = _stack()
        runtime = ServingRuntime(extractor)
        dead = runtime.make_request(0, _keys(seed=1), now=0.0, deadline=1.0)
        live = runtime.make_request(0, _keys(seed=2), now=0.0)
        outcome = runtime.serve_batch([dead, live], now=5.0)
        assert outcome.batch_size == 1
        assert outcome.union_size == len(np.unique(live.keys))

    def test_all_expired_batch_has_zero_size(self):
        _platform, _table, _cache, extractor = _stack()
        runtime = ServingRuntime(extractor)
        requests = [
            runtime.make_request(0, _keys(seed=s), now=0.0, deadline=1.0)
            for s in range(3)
        ]
        outcome = runtime.serve_batch(requests, now=5.0)
        assert outcome.batch_size == 0

    def test_mixed_gpus_rejected(self):
        _platform, _table, _cache, extractor = _stack()
        runtime = ServingRuntime(extractor)
        requests = [
            runtime.make_request(0, _keys(seed=1), now=0.0),
            runtime.make_request(1, _keys(seed=2), now=0.0),
        ]
        with pytest.raises(ValueError):
            runtime.serve_batch(requests, now=0.0)

    def test_all_expired_batch_is_cheap(self):
        _platform, _table, _cache, extractor = _stack()
        runtime = ServingRuntime(extractor)
        requests = [
            runtime.make_request(0, _keys(seed=s), now=0.0, deadline=1.0)
            for s in range(3)
        ]
        outcome = runtime.serve_batch(requests, now=5.0)
        assert outcome.union_size == 0
        assert outcome.service_time == 0.0
        assert all(
            r.status is RequestStatus.EXPIRED for r in outcome.responses
        )

    def test_deadline_hedge_still_per_request(self):
        """A member with a tight deadline hedges; relaxed members do not."""
        _platform, _table, _cache, extractor = _stack()
        runtime = ServingRuntime(extractor)
        probe = runtime.serve_batch(
            [runtime.make_request(0, _keys(seed=9), now=0.0)], now=0.0
        )
        shared = probe.service_time
        tight = runtime.make_request(
            0, _keys(seed=1), now=0.0, deadline=shared * 0.5
        )
        loose = runtime.make_request(0, _keys(seed=2), now=0.0)
        outcome = runtime.serve_batch([tight, loose], now=0.0)
        hedged = {r.request.request_id: r.hedged for r in outcome.responses}
        assert hedged[tight.request_id]
        assert not hedged[loose.request_id]

    def test_batch_metrics_recorded(self):
        _platform, _table, _cache, extractor = _stack()
        registry = MetricsRegistry("coalesce-test")
        with use_registry(registry):
            runtime = ServingRuntime(extractor)
            requests = [
                runtime.make_request(0, _keys(seed=s), now=0.0)
                for s in range(3)
            ]
            runtime.serve_batch(requests, now=0.0)
        sizes = registry.histogram("serve.coalesce.batch_size")
        assert sizes.count == 1 and sizes.sum == 3
        assert registry.histogram("serve.coalesce.dedup_ratio").count == 1
        assert registry.histogram("serve.coalesce.linger.seconds").count == 3


class TestCoalescedEventSim:
    def test_union_never_slower_than_sequential_members(self):
        platform = server_a()
        entry = 128.0
        members = [
            GpuDemand(dst=0, volumes={0: 50 * entry, 1: 30 * entry, -1: 20 * entry}),
            GpuDemand(dst=0, volumes={0: 40 * entry, 2: 25 * entry}),
        ]
        # overlapping unions shrink the union volume below the member sum.
        union = GpuDemand(
            dst=0, volumes={0: 70 * entry, 1: 30 * entry, 2: 25 * entry, -1: 20 * entry}
        )
        result = simulate_coalesced_extraction(platform, union, members)
        assert result.total_time == result.union_time
        assert result.union_time <= sum(result.solo_times) + 1e-12
        assert result.speedup >= 1.0

    def test_mismatched_destination_rejected(self):
        platform = server_a()
        union = GpuDemand(dst=0, volumes={0: 1024.0})
        member = GpuDemand(dst=1, volumes={1: 1024.0})
        with pytest.raises(ValueError):
            simulate_coalesced_extraction(platform, union, [member])


class TestSoakCoalescing:
    def test_quick_soak_coalesce_beats_dedup_floor(self):
        report = run_soak(
            SoakConfig.quick(
                scenario="steady", load=2.0, batching=BatchingMode.COALESCE
            )
        )
        assert report.ok
        assert report.coalesced_batches > 0
        assert report.mean_batch_size > 1.0
        assert report.dedup_ratio > 1.5

    def test_coalesced_goodput_not_worse_than_off(self):
        off = run_soak(SoakConfig.quick(scenario="steady", load=2.0))
        on = run_soak(
            SoakConfig.quick(
                scenario="steady", load=2.0, batching=BatchingMode.COALESCE
            )
        )
        assert on.goodput_rps >= off.goodput_rps

    def test_off_mode_reports_no_coalescing(self):
        report = run_soak(SoakConfig.quick(scenario="steady"))
        assert report.coalesced_batches == 0
        assert report.dedup_ratio == 1.0

    def test_closed_loop_rejects_coalescing(self):
        with pytest.raises(ValueError):
            SoakConfig.quick(closed_loop=True, batching=BatchingMode.COALESCE)

    def test_workers_pool_matches_single_thread_report(self):
        base = run_soak(
            SoakConfig.quick(
                scenario="steady", load=1.5, batching=BatchingMode.COALESCE,
                workers=1,
            )
        )
        pooled = run_soak(
            SoakConfig.quick(
                scenario="steady", load=1.5, batching=BatchingMode.COALESCE,
                workers=4,
            )
        )
        assert pooled.ok
        assert pooled.requests == base.requests
        assert pooled.integrity_failures == 0
