"""Multi-GPU embedding cache: functional correctness of lookups."""

import numpy as np
import pytest

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.policy import (
    empty_placement,
    partition_policy,
    replication_policy,
)
from repro.core.solver import solve_policy
from repro.hardware.platform import HOST
from repro.sim.mechanisms import Mechanism

N, D = 2000, 8


@pytest.fixture
def cache_partition(platform_a, small_table, skewed_hotness):
    placement = partition_policy(skewed_hotness, 200, 4)
    return MultiGpuEmbeddingCache(platform_a, small_table, placement)


class TestLookupCorrectness:
    def test_values_exact_partition(self, cache_partition, small_table, rng):
        keys = rng.integers(0, N, size=500)
        for gpu in range(4):
            result = cache_partition.lookup(gpu, keys)
            assert np.array_equal(result.values, small_table[keys])

    def test_values_exact_replication(self, platform_a, small_table, skewed_hotness, rng):
        placement = replication_policy(skewed_hotness, 300, 4)
        cache = MultiGpuEmbeddingCache(platform_a, small_table, placement)
        keys = rng.integers(0, N, size=500)
        assert np.array_equal(cache.lookup(2, keys).values, small_table[keys])

    def test_values_exact_solver_placement(
        self, platform_a, small_table, skewed_hotness, rng
    ):
        solved = solve_policy(platform_a, skewed_hotness, 150, D * 4)
        cache = MultiGpuEmbeddingCache(platform_a, small_table, solved.realize())
        keys = rng.integers(0, N, size=1000)
        for gpu in range(4):
            assert np.array_equal(cache.lookup(gpu, keys).values, small_table[keys])

    def test_empty_cache_serves_from_host(self, platform_a, small_table, rng):
        cache = MultiGpuEmbeddingCache(
            platform_a, small_table, empty_placement(N, 4)
        )
        keys = rng.integers(0, N, size=100)
        result = cache.lookup(0, keys)
        assert np.array_equal(result.values, small_table[keys])
        assert result.host_fraction == 1.0

    def test_duplicate_keys(self, cache_partition, small_table):
        keys = np.array([7, 7, 7, 1900, 7])
        assert np.array_equal(
            cache_partition.lookup(0, keys).values, small_table[keys]
        )

    def test_empty_batch(self, cache_partition):
        result = cache_partition.lookup(0, np.empty(0, dtype=np.int64))
        assert result.values.shape == (0, D)

    def test_out_of_range_key(self, cache_partition):
        with pytest.raises(KeyError):
            cache_partition.lookup(0, np.array([N]))


class TestLookupProvenance:
    def test_sources_match_demand(self, cache_partition, rng):
        keys = rng.integers(0, N, size=300)
        result = cache_partition.lookup(1, keys)
        host_keys = int((result.sources == HOST).sum())
        assert result.demand.volume(HOST) == host_keys * cache_partition.entry_bytes

    def test_local_fraction(self, platform_a, small_table, skewed_hotness):
        placement = replication_policy(skewed_hotness, N, 4)  # everything local
        cache = MultiGpuEmbeddingCache(platform_a, small_table, placement)
        result = cache.lookup(0, np.arange(100))
        assert result.local_fraction == 1.0
        assert result.host_fraction == 0.0


class TestExtractAll:
    def test_returns_values_and_report(self, cache_partition, small_table, rng):
        keys = [rng.integers(0, N, size=200) for _ in range(4)]
        values, report = cache_partition.extract_all(keys)
        for v, k in zip(values, keys):
            assert np.array_equal(v, small_table[k])
        assert report.time > 0
        assert report.mechanism is Mechanism.FACTORED

    def test_mechanism_selectable(self, cache_partition, rng):
        keys = [rng.integers(0, N, size=200) for _ in range(4)]
        _, report = cache_partition.extract_all(keys, mechanism=Mechanism.MESSAGE)
        assert report.mechanism is Mechanism.MESSAGE

    def test_wrong_gpu_count_rejected(self, cache_partition, rng):
        with pytest.raises(ValueError):
            cache_partition.extract_all([np.array([1])])


class TestReplacePlacement:
    def test_swap_changes_contents(self, platform_a, small_table, skewed_hotness, rng):
        cache = MultiGpuEmbeddingCache(
            platform_a, small_table, replication_policy(skewed_hotness, 100, 4)
        )
        cache.replace_placement(partition_policy(skewed_hotness, 100, 4))
        keys = rng.integers(0, N, size=400)
        assert np.array_equal(cache.lookup(0, keys).values, small_table[keys])
        assert cache.placement.replication_factor() == pytest.approx(1.0)

    def test_mismatched_placement_rejected(self, cache_partition, skewed_hotness):
        with pytest.raises(ValueError):
            cache_partition.replace_placement(empty_placement(N + 1, 4))


class TestValidation:
    def test_table_must_be_2d(self, platform_a, skewed_hotness):
        with pytest.raises(ValueError):
            MultiGpuEmbeddingCache(
                platform_a, np.zeros(10), empty_placement(10, 4)
            )

    def test_placement_table_mismatch(self, platform_a, small_table):
        with pytest.raises(ValueError):
            MultiGpuEmbeddingCache(platform_a, small_table, empty_placement(5, 4))
