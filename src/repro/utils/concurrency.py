"""Shared concurrency primitives for the multi-threaded serving path.

The serving layer's worker pool (one thread per GPU) reads the cache's
routing structures while the background :class:`~repro.core.refresher.Refresher`
mutates them.  The coordination contract is a classic reader/writer lock:

* **readers** (extraction planning, ``cache.lookup``, integrity scans)
  share the structures freely with each other;
* **writers** (refresh steps, placement swaps, rollbacks) get exclusive
  access, and are *preferred* — a waiting writer blocks new readers so a
  steady read load cannot starve a refresh forever.

The lock is reentrant per thread in both directions: a thread holding the
write lock may take it again (the refresher's rollback path re-enters
through ``restore_location_state``) and may also acquire the read lock
(``check_integrity`` runs read-side validation from inside a write
section).  Plain read reentrancy is supported too.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """Writer-preferring reader/writer lock, reentrant per thread.

    ``acquire_read``/``release_read`` and ``acquire_write``/``release_write``
    are the primitive surface; the :meth:`read_locked` / :meth:`write_locked`
    context managers are what call sites should use.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition(threading.Lock())
        #: thread ident → read-hold count (readers currently inside).
        self._readers: dict[int, int] = {}
        #: ident of the thread holding the write lock, if any.
        self._writer: int | None = None
        self._writer_depth = 0
        #: writers parked waiting; positive blocks *new* readers.
        self._writers_waiting = 0

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            # The writer may re-enter read-side (integrity checks inside a
            # refresh step); a thread already reading may nest freely.
            if self._writer == me or me in self._readers:
                self._readers[me] = self._readers.get(me, 0) + 1
                return
            while self._writer is not None or self._writers_waiting > 0:
                self._cond.wait()
            self._readers[me] = 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            count = self._readers.get(me)
            if count is None:
                raise RuntimeError("release_read without matching acquire")
            if count == 1:
                del self._readers[me]
                if not self._readers:
                    self._cond.notify_all()
            else:
                self._readers[me] = count - 1

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if me in self._readers:
                # Upgrading read → write deadlocks against other readers;
                # fail loudly instead of hanging the worker pool.
                raise RuntimeError(
                    "cannot upgrade a read lock to a write lock"
                )
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write by a non-holding thread")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # Context-manager surface
    # ------------------------------------------------------------------
    @contextmanager
    def read_locked(self):
        """``with lock.read_locked():`` — shared access."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        """``with lock.write_locked():`` — exclusive access."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()
