"""Figure 16: blocked solve vs per-entry theoretically-optimal policy."""

from repro.bench.experiments import fig16_vs_optimal


def bench_fig16_vs_optimal(run_experiment):
    result = run_experiment(fig16_vs_optimal)
    gaps = [row["gap_pct"] for row in result.rows]
    # Paper: 1.9% average gap, <2% claimed.  Allow headroom for the much
    # smaller reduced universes used here.
    assert sum(gaps) / len(gaps) < 5.0
    for row in result.rows:
        assert row["ugache_ms"] >= row["optimal_ms"] * 0.999
