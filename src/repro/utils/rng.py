"""Deterministic random-number helpers.

Every stochastic component in the library (dataset generators, samplers,
workload drivers) receives an explicit ``numpy.random.Generator``.  These
helpers centralise construction so experiments are reproducible bit-for-bit
from a single integer seed.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Return a ``Generator`` from a seed, passing generators through.

    Accepting an existing generator lets callers thread one RNG through a
    pipeline while tests pass plain ints.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Uses ``SeedSequence.spawn`` semantics via ``Generator.spawn`` so children
    are statistically independent and stable across runs.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    return list(make_rng(seed).spawn(n))
