"""Runtime factored Extractor (§5.3, Figure 8) — the conventional facade
over the unified extraction pipeline.

The Extractor turns one GPU's key batch into an *extraction plan*: keys
grouped by source location, cores dedicated per non-local group within link
tolerance, and the local group scheduled last at low priority to pad ragged
finishing times.  Every step is a stage of :mod:`repro.core.pipeline`
(resolve → reroute → group → dedicate → price → execute); this class adds
health resolution from an optional :class:`~repro.faults.injector.FaultInjector`
and the legacy ``extractor.*`` metrics, nothing else.  Because the batch
simulator, the event simulators and the serving runtime price through the
same :func:`~repro.core.pipeline.price_demand` stage, functional
correctness and simulated performance come from one shared pipeline — not
merely one class.

Fault tolerance: when a :class:`~repro.faults.spec.HealthView` marks a
source GPU down or a link partitioned — or the location table hands back a
corrupt/stale ``<GPU, Offset>`` — the pipeline's reroute stage moves exactly
those keys to the cheapest surviving replica (host as the last resort),
re-normalizes the core-dedication map over the sources that remain, and
emits ``faults.rerouted_keys`` so degradation is visible, never silent.  A
batch always completes; only its price changes.
"""

from __future__ import annotations

import numpy as np

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.pipeline import (
    ExtractionPlan,
    SourceGroup,
    execute_plan,
    plan_extraction,
    price_demand,
    renormalize_dedication,
)
from repro.faults.injector import FaultInjector
from repro.faults.spec import HealthView
from repro.hardware.platform import Platform
from repro.obs import get_registry, timer
from repro.sim.engine import BatchReport, simulate_batch
from repro.sim.mechanisms import GpuDemand, Mechanism, core_dedication
from repro.utils.logging import get_logger

__all__ = [
    "ExtractionPlan",
    "FactoredExtractor",
    "SourceGroup",
    "renormalize_dedication",
]

logger = get_logger("core.extractor")


class FactoredExtractor:
    """Plans and executes factored extraction over a multi-GPU cache.

    ``injector`` (optional) supplies per-call health views from its fault
    plan; callers can also pass an explicit ``health`` to any planning
    entry point, which wins over the injector.
    """

    def __init__(
        self,
        cache: MultiGpuEmbeddingCache,
        injector: FaultInjector | None = None,
    ) -> None:
        self._cache = cache
        self._injector = injector

    @property
    def platform(self) -> Platform:
        return self._cache.platform

    @property
    def cache(self) -> MultiGpuEmbeddingCache:
        return self._cache

    def _resolve_health(
        self, health: HealthView | None, now: float
    ) -> HealthView | None:
        if health is not None:
            return health
        if self._injector is not None:
            return self._injector.health(now)
        return None

    def plan(
        self,
        dst: int,
        keys: np.ndarray,
        health: HealthView | None = None,
        now: float = 0.0,
        exclude_sources: frozenset[int] | set[int] | None = None,
    ) -> ExtractionPlan:
        """Group a batch by source location and dedicate cores (§5.3).

        Runs the pipeline's resolve → reroute → dedicate → group stages.
        ``exclude_sources`` names source GPUs the plan must not read from
        even if they look healthy — the serving layer's open circuit
        breakers.  Their keys reroute through the degraded-mode path
        exactly like a partition would; local reads (``dst`` itself) are
        never excluded, since the local store needs no link.
        """
        reg = get_registry()
        health = self._resolve_health(health, now)
        exclude = frozenset(int(s) for s in (exclude_sources or ()))
        with timer("extractor.plan.seconds", reg):
            # ``core_dedication`` is resolved from this module's globals at
            # call time so tests (and operators) can swap the split policy.
            plan = plan_extraction(
                self._cache,
                dst,
                keys,
                health=health,
                exclude=exclude,
                dedication_fn=core_dedication,
                log=logger,
            )
        reg.counter("extractor.plan.calls").inc()
        return plan

    def execute(self, plan: ExtractionPlan) -> tuple[np.ndarray, GpuDemand]:
        """Gather values per the plan; returns (values, priced demand)."""
        reg = get_registry()
        with timer("extractor.execute.seconds", reg):
            out = execute_plan(self._cache, plan)
        reg.counter("extractor.execute.calls").inc()
        return out

    def extract(
        self,
        keys_per_gpu: list[np.ndarray],
        local_padding: bool = True,
        health: HealthView | None = None,
        now: float = 0.0,
    ) -> tuple[list[np.ndarray], BatchReport]:
        """Plan, execute and price one data-parallel batch."""
        health = self._resolve_health(health, now)
        plans = [
            self.plan(i, keys, health=health) for i, keys in enumerate(keys_per_gpu)
        ]
        outputs = [self.execute(p) for p in plans]
        report = simulate_batch(
            self.platform,
            [demand for _, demand in outputs],
            mechanism=Mechanism.FACTORED,
            local_padding=local_padding,
            health=health,
        )
        return [values for values, _ in outputs], report

    def price(
        self,
        dst: int,
        keys: np.ndarray,
        local_padding: bool = True,
        health: HealthView | None = None,
        now: float = 0.0,
    ):
        """Timing-only path for one GPU (no value gathering).

        Prices through the pipeline's shared :func:`price_demand` stage —
        the same call the batch simulator and the serving runtime make.
        """
        health = self._resolve_health(health, now)
        plan = self.plan(dst, keys, health=health)
        return price_demand(
            self.platform,
            plan.demand(self._cache.entry_bytes),
            health=health,
            local_padding=local_padding,
        )
