"""Concurrency suite: shared state under real threads (`-m concurrency`).

Hammers the thread-safety contracts the per-GPU serving workers rely on:
the location table's single mutex, the cache's reader/writer lock against
the background refresher, per-instrument metric locks, per-breaker locks,
and the worker-pool soak's determinism.  Every test is deterministic in
its *assertions* (exact values, exact counts) even though the thread
interleavings are not.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.location_table import LocationTable
from repro.core.policy import hot_replicate_warm_partition_policy
from repro.core.refresher import RefreshConfig, Refresher
from repro.hardware.platform import HOST, server_a
from repro.obs import MetricsRegistry, use_registry
from repro.serve import (
    BatchingMode,
    BreakerConfig,
    CircuitBreaker,
    GpuWorkerPool,
    SoakConfig,
    run_soak,
)
from repro.utils.concurrency import ReadWriteLock
from repro.utils.rng import make_rng
from repro.utils.stats import zipf_pmf

pytestmark = pytest.mark.concurrency

N, D = 2000, 8
THREADS = 8


def _run_threads(targets):
    """Start, join, and re-raise the first worker exception."""
    errors: list[BaseException] = []

    def wrap(fn):
        def inner():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        return inner

    threads = [threading.Thread(target=wrap(t)) for t in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestReadWriteLock:
    def test_readers_share_writer_excludes(self):
        lock = ReadWriteLock()
        in_read = threading.Barrier(3, timeout=5.0)
        wrote = threading.Event()

        def reader():
            with lock.read_locked():
                in_read.wait()  # both readers inside simultaneously
                time.sleep(0.05)
                assert not wrote.is_set()  # writer still excluded

        def writer():
            in_read.wait()  # wait until both readers hold the lock
            with lock.write_locked():
                wrote.set()

        _run_threads([reader, reader, writer])
        assert wrote.is_set()

    def test_reentrant_and_writer_may_read(self):
        lock = ReadWriteLock()
        with lock.write_locked():
            with lock.write_locked():
                with lock.read_locked():
                    pass
        with lock.read_locked():
            with lock.read_locked():
                pass

    def test_upgrade_raises(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            with pytest.raises(RuntimeError):
                lock.acquire_write()


class TestLocationTableConcurrency:
    """Writers re-assert the ground truth while readers verify no torn reads.

    Every key's value is a pure function of the key (source = key % 4,
    offset = key), so any hit a reader observes must return exactly that
    pair — a torn read (source from one write, offset from another) or a
    probe against a mid-rebuild array would break the equality.
    """

    def test_hammer_lookup_insert_remove(self):
        table = LocationTable(expected_entries=64)  # grows under load
        keys = np.arange(N, dtype=np.int64)
        sources = (keys % 4).astype(np.int64)
        table.insert_batch(keys, sources, keys)
        stop = threading.Event()

        def writer(seed):
            rng = make_rng(seed)
            while not stop.is_set():
                batch = rng.choice(N, size=128, replace=False).astype(np.int64)
                table.insert_batch(batch, batch % 4, batch)

        def churner(seed):
            """Remove a slice and immediately re-insert it."""
            rng = make_rng(seed)
            while not stop.is_set():
                batch = np.sort(
                    rng.choice(N, size=32, replace=False).astype(np.int64)
                )
                table.remove_batch(batch)
                table.insert_batch(batch, batch % 4, batch)

        def reader(seed):
            rng = make_rng(seed)
            while not stop.is_set():
                batch = rng.choice(N, size=256).astype(np.int64)
                src, off = table.lookup_batch(batch)
                hit = src != HOST
                assert np.array_equal(src[hit], batch[hit] % 4)
                assert np.array_equal(off[hit], batch[hit])
                # misses keep the host-by-key convention.
                assert np.array_equal(off[~hit], batch[~hit])

        def stopper():
            time.sleep(0.4)
            stop.set()

        _run_threads(
            [lambda s=i: writer(s) for i in range(2)]
            + [lambda s=i + 10: churner(s) for i in range(2)]
            + [lambda s=i + 20: reader(s) for i in range(THREADS - 4)]
            + [stopper]
        )
        # Steady state: every key present with its ground-truth value
        # once the churners' final re-inserts land.
        src, off = table.lookup_batch(keys)
        present = src != HOST
        assert np.array_equal(src[present], keys[present] % 4)
        assert np.array_equal(off[present], keys[present])


class TestCacheRefreshConcurrency:
    """Foreground lookups stay exact while a refresh rewires placement."""

    def _stack(self):
        platform = server_a()
        rng = make_rng(0)
        table = rng.standard_normal((N, D)).astype(np.float32)
        hotness = zipf_pmf(N, 1.2) * 1000.0
        placement = hot_replicate_warm_partition_policy(
            hotness, N // 8, platform.num_gpus, 0.5
        )
        cache = MultiGpuEmbeddingCache(platform, table, placement)
        # A genuinely different placement, so the diff is non-empty.
        drifted = hot_replicate_warm_partition_policy(
            hotness[::-1].copy(), N // 8, platform.num_gpus, 0.5
        )
        return platform, table, cache, drifted

    def test_lookups_exact_during_refresh(self):
        platform, table, cache, drifted = self._stack()
        refresher = Refresher(
            cache, RefreshConfig(update_batch_entries=64)
        )
        done = threading.Event()

        def refresh():
            try:
                outcome = refresher.refresh(drifted)
                assert outcome.entries_moved > 0
            finally:
                done.set()

        def reader(seed):
            rng = make_rng(seed)
            gpu = seed % platform.num_gpus
            while not done.is_set():
                keys = rng.integers(0, N, size=128)
                result = cache.lookup(gpu, keys)
                assert np.array_equal(result.values, table[keys])

        _run_threads(
            [refresh] + [lambda s=i: reader(s) for i in range(THREADS - 1)]
        )
        assert cache.verify_integrity() == []


class TestMetricsConcurrency:
    def test_counter_increments_are_exact(self):
        registry = MetricsRegistry("conc")
        per_thread = 20_000

        def worker():
            counter = registry.counter("hits", gpu=0)
            for _ in range(per_thread):
                counter.inc()

        _run_threads([worker] * THREADS)
        assert registry.counter("hits", gpu=0).value == THREADS * per_thread

    def test_histogram_counts_stay_consistent(self):
        registry = MetricsRegistry("conc")
        per_thread = 5_000

        def worker(seed):
            rng = make_rng(seed)
            hist = registry.histogram("lat")
            for _ in range(per_thread):
                hist.observe(float(rng.uniform(1e-6, 10.0)))

        _run_threads([lambda s=i: worker(s) for i in range(THREADS)])
        hist = registry.histogram("lat")
        assert hist.count == THREADS * per_thread
        assert sum(hist.bucket_counts) == hist.count
        assert hist.min <= hist.mean <= hist.max

    def test_gauge_inc_is_exact(self):
        registry = MetricsRegistry("conc")

        def worker():
            gauge = registry.gauge("depth")
            for _ in range(10_000):
                gauge.inc(1)
                gauge.inc(-1)

        _run_threads([worker] * THREADS)
        assert registry.gauge("depth").value == 0.0

    def test_series_creation_race_yields_one_instrument(self):
        registry = MetricsRegistry("conc")
        instruments = []
        barrier = threading.Barrier(THREADS, timeout=5.0)

        def worker():
            barrier.wait()
            instruments.append(registry.counter("race", gpu=1))

        _run_threads([worker] * THREADS)
        assert all(i is instruments[0] for i in instruments)


class TestBreakerConcurrency:
    def test_hammered_breaker_keeps_sane_state(self):
        breaker = CircuitBreaker(
            0, BreakerConfig(failure_threshold=3, cooldown_seconds=0.0)
        )
        registry = MetricsRegistry("conc")

        def worker(seed):
            rng = make_rng(seed)
            for i in range(2_000):
                now = i * 1e-3
                if breaker.allow(now):
                    if rng.random() < 0.5:
                        breaker.record_failure(now)
                    else:
                        breaker.record_success(now)

        with use_registry(registry):
            _run_threads([lambda s=i: worker(s) for i in range(THREADS)])
        # No torn transition: every recorded hop changes state.
        for _t, frm, to in breaker.transitions:
            assert frm != to
        assert breaker.consecutive_failures >= 0

    def test_half_open_probes_are_metered_across_threads(self):
        """Exactly ``half_open_probes`` threads pass — no thundering herd.

        An open breaker whose cooldown just elapsed is the dangerous
        moment: every serving worker calls ``allow`` at once, and an
        unmetered re-admit would stampede the recovering node with the
        full fleet.  The probe budget must hold under real contention.
        """
        probes = 2
        config = BreakerConfig(
            failure_threshold=1,
            cooldown_seconds=1.0,
            half_open_probes=probes,
            success_threshold=probes,
        )
        registry = MetricsRegistry("conc")
        with use_registry(registry):
            for _round in range(20):
                breaker = CircuitBreaker(0, config)
                breaker.record_failure(0.0)  # trip it
                assert not breaker.allow(0.5)  # still cooling down
                now = 2.0  # cooldown elapsed: next allows are probes
                barrier = threading.Barrier(THREADS)
                admitted: list[bool] = []
                lock = threading.Lock()

                def worker():
                    barrier.wait()
                    ok = breaker.allow(now)
                    with lock:
                        admitted.append(ok)

                _run_threads([worker] * THREADS)
                assert sum(admitted) == probes, (
                    f"half-open metering leaked: {sum(admitted)} probes "
                    f"admitted, budget {probes}"
                )
                # The probes' successes close it; the herd stays held off.
                for _ in range(probes):
                    breaker.record_success(now)
                assert breaker.state.value == "closed"


class TestStreamingEstimatorConcurrency:
    """The drift estimator is fed from every per-GPU worker at once."""

    def test_no_lost_updates_under_worker_pool(self):
        """With decay=1.0 the estimator is a plain counter, so after
        racing records from a worker pool the counts must be exact —
        any lost update under the mutex shows as a shortfall."""
        from repro.core.drift_adapt import StreamingHotnessEstimator

        est = StreamingHotnessEstimator(N, decay=1.0)
        per_gpu, batch = 200, 64

        def feed(gpu):
            rng = make_rng(gpu)
            for _ in range(per_gpu):
                est.record(rng.integers(0, N, size=batch))
            return gpu

        with GpuWorkerPool(4) as pool:
            pool.map_gpus(feed)
        assert est.batches_recorded == 4 * per_gpu
        assert est.counts().sum() == 4 * per_gpu * batch
        assert est.hotness().sum() == pytest.approx(batch)

    def test_snapshot_never_tears(self):
        """Each recorded batch holds exactly ``batch`` accesses, so on a
        decay=1.0 estimator every atomic (hotness, batches) snapshot
        satisfies counts == batches × batch exactly.  A torn read —
        counts from after a record paired with the batch count from
        before it — breaks the identity."""
        from repro.core.drift_adapt import StreamingHotnessEstimator

        batch = 128
        est = StreamingHotnessEstimator(N, decay=1.0, prior=0.0)
        stop = threading.Event()

        def writer(seed):
            rng = make_rng(seed)
            while not stop.is_set():
                est.record(rng.integers(0, N, size=batch))

        def reader():
            while not stop.is_set():
                hot, batches = est.snapshot()
                if batches:
                    assert hot.sum() * batches == pytest.approx(
                        batches * batch
                    )

        def stopper():
            time.sleep(0.4)
            stop.set()

        _run_threads(
            [lambda s=i: writer(s) for i in range(4)]
            + [reader] * (THREADS - 4)
            + [stopper]
        )

    def test_observe_races_policy_swap(self):
        """Adapter observes from worker threads while the control thread
        lands PolicyManager swaps: every offered request is accounted and
        the swapped cache stays intact."""
        from repro.core.solver import PolicyOutcome
        from repro.serve import DriftAdapter, PolicyManager

        platform = server_a()
        rng = make_rng(0)
        table = rng.standard_normal((N, D)).astype(np.float32)
        hotness = zipf_pmf(N, 1.1) * 1000.0
        cap = N // 8
        placement = hot_replicate_warm_partition_policy(
            hotness, cap, platform.num_gpus, 0.5
        )
        cache = MultiGpuEmbeddingCache(platform, table, placement)
        manager = PolicyManager(
            cache, refresher=Refresher(cache, RefreshConfig(update_batch_entries=64))
        )
        adapter = DriftAdapter(manager, cap, hotness)
        per_gpu, batch = 150, 64
        swaps = 6

        def feed(gpu):
            feed_rng = make_rng(100 + gpu)
            for i in range(per_gpu):
                adapter.observe(
                    gpu, feed_rng.integers(0, N, size=batch), now=float(i)
                )
            return gpu

        def swapper():
            for k in range(swaps):
                target = hot_replicate_warm_partition_policy(
                    np.roll(hotness, (k + 1) * N // 7), cap,
                    platform.num_gpus, 0.5,
                )
                outcome = PolicyOutcome(
                    placement=target, source="greedy", est_time=1.0,
                    elapsed=0.0, attempts=1,
                )
                report = manager.swap(outcome, now=float(k))
                assert report.swapped

        errors: list[BaseException] = []

        def run_swapper():
            try:
                swapper()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        control = threading.Thread(target=run_swapper)
        control.start()
        with GpuWorkerPool(platform.num_gpus) as pool:
            pool.map_gpus(feed)
        control.join()
        if errors:
            raise errors[0]
        assert adapter.observed == platform.num_gpus * per_gpu
        assert adapter.estimator.batches_recorded == platform.num_gpus * per_gpu
        assert manager.version == swaps
        assert cache.verify_integrity() == []


class TestWorkerPool:
    def test_map_gpus_barriers_and_collects(self):
        order: list[int] = []
        lock = threading.Lock()

        def fn(gpu):
            with lock:
                order.append(gpu)
            return gpu * gpu

        with GpuWorkerPool(4) as pool:
            results = pool.map_gpus(fn)
        assert sorted(order) == [0, 1, 2, 3]
        assert results == [0, 1, 4, 9]

    def test_worker_exception_propagates(self):
        def fn(gpu):
            if gpu == 2:
                raise RuntimeError("boom")
            return gpu

        with GpuWorkerPool(4) as pool:
            with pytest.raises(RuntimeError, match="boom"):
                pool.map_gpus(fn)

    def test_concurrent_soak_is_deterministic(self):
        """The workers>1 soak gives bit-identical reports run over run."""
        cfg = SoakConfig.quick(
            scenario="steady",
            load=1.5,
            requests_per_gpu=60,
            batching=BatchingMode.COALESCE,
            workers=4,
        )
        first = run_soak(cfg).to_dict()
        for _ in range(2):
            assert run_soak(cfg).to_dict() == first
        assert first["integrity_failures"] == 0
