"""Event-level extraction traces (Figure 8 as data)."""

import numpy as np
import pytest

from repro.hardware.platform import HOST
from repro.sim.mechanisms import GpuDemand, factored_extraction
from repro.sim.trace import trace_batch, trace_factored


def _demand(dst=0, local=30e6, g1=20e6, host=2e6):
    vols = {}
    if local:
        vols[dst] = local
    if g1 is not None:
        vols[1 if dst != 1 else 2] = g1
    if host:
        vols[HOST] = host
    return GpuDemand(dst=dst, volumes=vols)


class TestTraceStructure:
    def test_nonlocal_groups_start_at_zero(self, platform_a):
        trace = trace_factored(platform_a, _demand())
        for g in trace.groups:
            assert g.start == 0.0
            assert g.finish > 0.0

    def test_local_padding_starts_immediately(self, platform_a):
        trace = trace_factored(platform_a, _demand())
        assert trace.local_segments[0].start == 0.0

    def test_no_padding_local_waits(self, platform_a):
        trace = trace_factored(platform_a, _demand(), local_padding=False)
        last_group = max(g.finish for g in trace.groups)
        assert trace.local_segments[0].start == pytest.approx(last_group)

    def test_core_budget_never_exceeded(self, platform_a):
        trace = trace_factored(platform_a, _demand())
        # Sample instants: total active cores within budget.
        events = [g.finish for g in trace.groups] + [
            s.finish for s in trace.local_segments
        ]
        for t in np.linspace(0, max(events), 50):
            active = sum(
                g.cores for g in trace.groups if g.start <= t < g.finish
            )
            active += sum(
                s.cores for s in trace.local_segments if s.start <= t < s.finish
            )
            assert active <= platform_a.gpu.num_cores + 1e-9

    def test_local_work_conserved(self, platform_a):
        trace = trace_factored(platform_a, _demand(local=50e6))
        consumed = sum(
            s.cores * (s.finish - s.start) for s in trace.local_segments
        )
        needed = 50e6 / platform_a.gpu.per_core_bandwidth
        assert consumed == pytest.approx(needed, rel=1e-9)


class TestConsistencyWithAnalyticModel:
    @pytest.mark.parametrize("local", [0.0, 5e6, 80e6, 400e6])
    @pytest.mark.parametrize("host", [0.0, 3e6, 30e6])
    def test_makespan_matches_factored_extraction(self, platform_a, local, host):
        demand = _demand(local=local, host=host)
        trace = trace_factored(platform_a, demand)
        report = factored_extraction(platform_a, demand)
        assert trace.makespan == pytest.approx(report.time, rel=1e-6)

    def test_makespan_matches_on_switch(self, platform_c):
        demand = GpuDemand(
            dst=0, volumes={0: 100e6, 1: 10e6, 3: 12e6, HOST: 4e6}
        )
        trace = trace_factored(platform_c, demand)
        report = factored_extraction(platform_c, demand)
        assert trace.makespan == pytest.approx(report.time, rel=1e-6)

    def test_no_padding_matches_ablation(self, platform_a):
        demand = _demand(local=60e6)
        trace = trace_factored(platform_a, demand, local_padding=False)
        report = factored_extraction(platform_a, demand, local_padding=False)
        assert trace.makespan == pytest.approx(report.time, rel=1e-6)


class TestAccessors:
    def test_busy_interval(self, platform_a):
        trace = trace_factored(platform_a, _demand())
        interval = trace.busy_interval(HOST)
        assert interval is not None and interval[0] == 0.0
        assert trace.busy_interval(3) is None

    def test_core_utilization_bounds(self, platform_a):
        trace = trace_factored(platform_a, _demand(local=200e6))
        assert 0.0 < trace.core_utilization() <= 1.0

    def test_padding_improves_core_utilization(self, platform_a):
        demand = _demand(local=60e6)
        padded = trace_factored(platform_a, demand)
        serial = trace_factored(platform_a, demand, local_padding=False)
        assert padded.core_utilization() >= serial.core_utilization()

    def test_gantt_renders(self, platform_a):
        trace = trace_factored(platform_a, _demand())
        chart = trace.gantt()
        assert "host" in chart and "local" in chart and "█" in chart

    def test_empty_trace(self, platform_a):
        trace = trace_factored(platform_a, GpuDemand(dst=0, volumes={}))
        assert trace.makespan == 0.0
        assert trace.gantt() == "(empty trace)"

    def test_trace_batch(self, platform_a):
        demands = [_demand(dst=g) for g in range(4)]
        traces = trace_batch(platform_a, demands)
        assert [t.dst for t in traces] == [0, 1, 2, 3]
