"""Cross-validation of the solver's time model against the simulator.

The MILP minimizes an *estimate* of extraction time (§6.2); the simulator
prices the realized placement independently.  If the two drift apart, the
solver optimizes the wrong objective — the classic failure mode of
model-based placement.  This harness quantifies the agreement across
randomized workloads and platforms, and is run both as a test invariant
and as a benchmark (`bench_misc_model_agreement`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evaluate import evaluate_placement
from repro.core.solver import SolverConfig, solve_policy
from repro.hardware.platform import Platform
from repro.sim.mechanisms import Mechanism
from repro.utils.rng import make_rng
from repro.utils.stats import zipf_pmf


@dataclass(frozen=True)
class AgreementSample:
    """One randomized configuration's estimate-vs-simulation outcome."""

    platform: str
    alpha: float
    cache_ratio: float
    estimated_time: float
    simulated_time: float

    @property
    def relative_error(self) -> float:
        """Signed (simulated − estimated) / simulated."""
        if self.simulated_time <= 0:
            return 0.0
        return (self.simulated_time - self.estimated_time) / self.simulated_time


@dataclass(frozen=True)
class AgreementReport:
    """Aggregate of many samples."""

    samples: tuple[AgreementSample, ...]

    @property
    def mean_abs_error(self) -> float:
        if not self.samples:
            return 0.0
        return float(np.mean([abs(s.relative_error) for s in self.samples]))

    @property
    def worst_abs_error(self) -> float:
        if not self.samples:
            return 0.0
        return float(max(abs(s.relative_error) for s in self.samples))

    def within(self, tolerance: float) -> bool:
        return self.worst_abs_error <= tolerance


def validate_model_agreement(
    platforms: list[Platform],
    num_entries: int = 3000,
    alphas: tuple[float, ...] = (0.6, 1.0, 1.4),
    ratios: tuple[float, ...] = (0.03, 0.10, 0.30),
    entry_bytes: int = 512,
    batch_keys: float = 50_000.0,
    solver: SolverConfig | None = None,
    seed: int = 0,
) -> AgreementReport:
    """Sweep (platform × skew × capacity) and compare estimate vs simulation.

    The hotness for each cell is a Zipf pmf with per-cell random entry
    permutation, so placements never accidentally align with entry ids.
    """
    solver = solver or SolverConfig(coarse_block_frac=0.02)
    rng = make_rng(seed)
    samples: list[AgreementSample] = []
    for platform in platforms:
        for alpha in alphas:
            pmf = zipf_pmf(num_entries, alpha) * batch_keys
            hotness = pmf[rng.permutation(num_entries)]
            for ratio in ratios:
                capacity = int(ratio * num_entries)
                solved = solve_policy(
                    platform, hotness, capacity, entry_bytes, solver
                )
                simulated = evaluate_placement(
                    platform,
                    solved.realize(),
                    hotness,
                    entry_bytes,
                    Mechanism.FACTORED,
                ).time
                samples.append(
                    AgreementSample(
                        platform=platform.name,
                        alpha=alpha,
                        cache_ratio=ratio,
                        estimated_time=solved.est_time,
                        simulated_time=simulated,
                    )
                )
    return AgreementReport(samples=tuple(samples))
