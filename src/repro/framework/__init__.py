"""Framework-style wrappers (§7.1): PyTorch-like and Keras-like surfaces."""

from repro.framework.tf_like import UGacheKerasEmbedding
from repro.framework.torch_like import Module, UGacheEmbedding

__all__ = ["Module", "UGacheEmbedding", "UGacheKerasEmbedding"]
