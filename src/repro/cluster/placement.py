"""Solver-driven node placement: the stage *above* the per-GPU MILP.

UGache's §6 MILP answers "which GPU inside one box stores which entry".
A cluster adds a question above it: **which node owns which slice of the
keyspace**, with R-way replication so node death never orphans a key.
The consistent-hash ring (:mod:`repro.cluster.ring`) answers it blindly;
this module answers it from the same hotness profile the MILP consumes:

1. **node stage** — :func:`solve_node_placement` assigns each entry's R
   replicas to the R least-loaded nodes at that point of a hotness-sorted
   sweep (an LPT-style greedy that is within a few percent of the LP
   optimum for balance), optionally replicating the hottest head on
   *every* node so no single node bottlenecks the flash-crowd keys;
2. **per-GPU stage** — each node then hands its shard's hotness to the
   unchanged per-GPU machinery
   (:func:`repro.core.solver.solve_sharded_policy`), which masks hotness
   outside the shard and solves the §6 MILP/greedy/cached chain as if the
   shard were the whole world.

Both placement modes expose the same ``owners_for`` surface, so the
front-end routes through either interchangeably.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.utils.logging import get_logger

logger = get_logger("cluster.placement")

__all__ = ["NodePlacement", "analyze_node_loss", "solve_node_placement"]


@dataclass(frozen=True)
class NodePlacement:
    """Explicit per-entry owner table: ``owners[k]`` lists key ``k``'s
    replica nodes, primary first."""

    #: ``(num_entries, replication)`` node ids.
    owners: np.ndarray
    num_nodes: int
    #: optional boolean mask of wide-replicated entries: the hot head
    #: every node caches regardless of the owner columns (the owner table
    #: only routes reads; membership is owners ∪ wide).
    wide: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.owners.ndim != 2:
            raise ValueError("owners must be a (num_entries, R) table")
        if self.owners.size and (
            self.owners.min() < 0 or self.owners.max() >= self.num_nodes
        ):
            raise ValueError("owner ids out of range")

    @property
    def num_entries(self) -> int:
        return int(self.owners.shape[0])

    @property
    def replication(self) -> int:
        return int(self.owners.shape[1])

    def owners_for(self, keys: np.ndarray) -> np.ndarray:
        """``(len(keys), replication)`` owner nodes, primary first."""
        return self.owners[np.ascontiguousarray(keys, dtype=np.int64)]

    def primary_for(self, keys: np.ndarray) -> np.ndarray:
        return self.owners_for(keys)[:, 0]

    def member_mask(self, node: int) -> np.ndarray:
        """Boolean mask over the keyspace: which entries ``node`` holds."""
        mask = (self.owners == node).any(axis=1)
        if self.wide is not None:
            mask = mask | self.wide
        return mask

    def share_of(self, num_entries: int | None = None) -> dict[int, float]:
        """Fraction of the keyspace each node primarily owns."""
        primary = self.owners[:, 0]
        n = self.num_entries
        return {
            node: float((primary == node).sum()) / n
            for node in range(self.num_nodes)
        }

    def moved_primaries(self, node: int, num_entries: int | None = None) -> int:
        """Keys that must change primary if ``node`` dies (= its shard)."""
        return int((self.owners[:, 0] == node).sum())


def analyze_node_loss(placement, node_ids, num_entries: int) -> list[dict]:
    """What-if: for each node, the blast radius of losing it.

    Works on anything with the ``owners_for`` surface (ring or solved
    placement), so the CLI can run the analysis without instantiating
    cache nodes.  Keys whose surviving replica set is empty spill to the
    survivors' host tables round-robin for the share estimate — in the
    live front-end that is exactly the host-fallback path.
    """
    node_ids = sorted(int(n) for n in node_ids)
    entries = np.arange(num_entries, dtype=np.int64)
    owners = placement.owners_for(entries)
    primary = owners[:, 0]
    out: list[dict] = []
    for node_id in node_ids:
        affected = primary == node_id
        moved = int(affected.sum())
        covered = np.zeros(num_entries, dtype=bool)
        new_primary = primary.copy()
        pending = affected.copy()
        for r in range(1, owners.shape[1]):
            takeover = pending & (owners[:, r] != node_id)
            new_primary[takeover] = owners[takeover, r]
            covered |= takeover
            pending &= ~takeover
        survivors = [n for n in node_ids if n != node_id]
        uncovered = np.flatnonzero(affected & ~covered)
        if len(uncovered) and survivors:
            new_primary[uncovered] = np.asarray(survivors)[
                uncovered % len(survivors)
            ]
        shares = {
            int(n): float((new_primary == n).sum()) / num_entries
            for n in survivors
        }
        out.append(
            {
                "node": node_id,
                "share": moved / num_entries,
                "moved_primaries": moved,
                "replica_covered": (
                    float(covered.sum()) / moved if moved else 1.0
                ),
                "uncovered_keys": int(len(uncovered)),
                "post_loss_max_share": max(shares.values(), default=0.0),
            }
        )
    return out


def solve_node_placement(
    hotness: np.ndarray,
    num_nodes: int,
    replication: int = 1,
    wide_replicate_frac: float = 0.0,
) -> NodePlacement:
    """Balance expected load (hotness), not key count, across nodes.

    Entries are swept hottest-first; each entry's R replicas go to the R
    least-loaded nodes at that moment, so the aggregate hotness per node
    stays within one entry's weight of even.  ``wide_replicate_frac`` of
    the keyspace (the hottest head) is instead replicated on *every*
    node — the cluster twin of the MILP's hot-replicate tier, so the keys
    that dominate traffic never funnel through one node.
    """
    hotness = np.asarray(hotness, dtype=np.float64)
    n = len(hotness)
    if num_nodes < 1:
        raise ValueError("need at least one node")
    if not 1 <= replication <= num_nodes:
        raise ValueError(
            f"replication must be in [1, {num_nodes}], got {replication}"
        )
    if not 0 <= wide_replicate_frac <= 1:
        raise ValueError("wide_replicate_frac must be in [0, 1]")

    owners = np.empty((n, replication), dtype=np.int64)
    wide_mask = np.zeros(n, dtype=bool)
    order = np.argsort(-hotness, kind="stable")
    wide = int(round(wide_replicate_frac * n))
    # (load, node) heap; ties resolve by node id for determinism.
    loads = [(0.0, node) for node in range(num_nodes)]
    heapq.heapify(loads)

    for rank, entry in enumerate(order):
        h = float(hotness[entry])
        if rank < wide:
            # Hot head: on every node; the primary rotates round-robin so
            # the head's *read* load also spreads.
            primary = rank % num_nodes
            owners[entry, 0] = primary
            rest = [x for x in range(num_nodes) if x != primary]
            owners[entry, 1:] = rest[: replication - 1]
            wide_mask[entry] = True
            continue
        picked = [heapq.heappop(loads) for _ in range(replication)]
        for r, (load, node) in enumerate(picked):
            owners[entry, r] = node
            # The primary serves the reads; replicas only pay storage and
            # failover standby, weighted well below a live serve.
            heapq.heappush(
                loads, (load + (h if r == 0 else 0.1 * h), node)
            )
    placement = NodePlacement(
        owners=owners,
        num_nodes=num_nodes,
        wide=wide_mask if wide else None,
    )
    share = placement.share_of()
    logger.debug(
        "node placement: %d entries over %d nodes (R=%d), primary shares %s",
        n, num_nodes, replication,
        {k: round(v, 3) for k, v in share.items()},
    )
    return placement
