"""Persist placements and solved-policy summaries.

Operationally, a policy is solved rarely (startup / refresh) and *shipped*:
the Filler on each GPU consumes the placement, monitoring consumes the
estimate summary.  These helpers make both durable:

* :func:`save_placement` / :func:`load_placement` — exact ``.npz``
  round-trip of a :class:`~repro.core.policy.Placement`;
* :func:`policy_summary` — a JSON-able dict of a
  :class:`~repro.core.solver.SolvedPolicy` (sizes, estimate, solve time —
  not the full fractional solution).
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.core.policy import Placement
from repro.core.solver import SolvedPolicy


def save_placement(path: str | os.PathLike, placement: Placement) -> None:
    """Write a placement as a compressed ``.npz``."""
    arrays = {
        f"gpu_{i}": ids for i, ids in enumerate(placement.per_gpu)
    }
    np.savez_compressed(
        path,
        num_entries=np.int64(placement.num_entries),
        num_gpus=np.int64(placement.num_gpus),
        **arrays,
    )


def load_placement(path: str | os.PathLike) -> Placement:
    """Load a placement written by :func:`save_placement`."""
    with np.load(path) as data:
        if "num_entries" not in data or "num_gpus" not in data:
            raise ValueError(f"{path}: not a saved Placement")
        num_gpus = int(data["num_gpus"])
        per_gpu = tuple(data[f"gpu_{i}"] for i in range(num_gpus))
        return Placement(num_entries=int(data["num_entries"]), per_gpu=per_gpu)


def policy_summary(policy: SolvedPolicy) -> dict:
    """JSON-able operational summary of one solve."""
    return {
        "platform": policy.platform_name,
        "blocks": int(policy.blocks.num_blocks),
        "entries": int(policy.blocks.num_entries),
        "variables": int(policy.num_variables),
        "constraints": int(policy.num_constraints),
        "solve_seconds": float(policy.solve_seconds),
        "estimated_time_seconds": float(policy.est_time),
        "estimated_time_per_gpu": [float(t) for t in policy.est_time_per_gpu],
        "capacities": [int(c) for c in policy.capacities],
    }


def save_policy_summary(path: str | os.PathLike, policy: SolvedPolicy) -> None:
    """Write :func:`policy_summary` as JSON."""
    with open(path, "w") as fh:
        json.dump(policy_summary(policy), fh, indent=2)


def load_policy_summary(path: str | os.PathLike) -> dict:
    """Read a summary written by :func:`save_policy_summary`."""
    with open(path) as fh:
        summary = json.load(fh)
    required = {"platform", "estimated_time_seconds", "capacities"}
    missing = required - set(summary)
    if missing:
        raise ValueError(f"{path}: missing summary fields {sorted(missing)}")
    return summary
