"""Measured workload replay: stream real batches through a built cache.

Every figure driver prices placements from *expected* per-source volumes
(hotness × entry size).  This runner performs the measurement the other
way — replaying actual sampled batches through a functional
:class:`~repro.core.cache.MultiGpuEmbeddingCache` and timing each with the
simulator — yielding per-iteration distributions (mean/p50/p99) and a
direct check that the expected-value shortcut is unbiased
(``bench_misc_measured_vs_expected``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.evaluate import demand_from_keys
from repro.core.policy import Placement
from repro.hardware.platform import Platform
from repro.sim.engine import simulate_batch
from repro.sim.mechanisms import Mechanism


@dataclass(frozen=True)
class ReplayStats:
    """Distribution of per-iteration extraction times over a replay."""

    iterations: int
    times: np.ndarray
    local_fraction: float
    remote_fraction: float
    host_fraction: float

    @property
    def mean_time(self) -> float:
        return float(self.times.mean()) if self.iterations else 0.0

    @property
    def p50_time(self) -> float:
        return float(np.percentile(self.times, 50)) if self.iterations else 0.0

    @property
    def p99_time(self) -> float:
        return float(np.percentile(self.times, 99)) if self.iterations else 0.0

    @property
    def stdev_time(self) -> float:
        return float(self.times.std()) if self.iterations else 0.0


def replay_workload(
    platform: Platform,
    placement: Placement,
    batches: Iterable[list[np.ndarray]],
    entry_bytes: int,
    mechanism: Mechanism = Mechanism.FACTORED,
    max_iterations: int | None = None,
) -> ReplayStats:
    """Time every iteration of a batch stream against a placement.

    ``batches`` yields one key array per GPU per iteration (the workload
    protocol of :mod:`repro.gnn.workload` / :mod:`repro.dlr.workload`).
    Only demands are derived — values are not gathered, so large replays
    stay cheap; use :func:`replay_functional` when byte-exactness of the
    returned values should be asserted too.
    """
    from repro.core.evaluate import resolve_sources

    source_map = resolve_sources(platform, placement)
    times: list[float] = []
    volume = {"local": 0.0, "remote": 0.0, "host": 0.0}
    for iteration, per_gpu in enumerate(batches):
        if max_iterations is not None and iteration >= max_iterations:
            break
        demands = [
            demand_from_keys(platform, source_map, dst, keys, entry_bytes)
            for dst, keys in enumerate(per_gpu)
        ]
        report = simulate_batch(platform, demands, mechanism)
        times.append(report.time)
        split = report.volume_split()
        for key in volume:
            volume[key] += split[key]
    total = sum(volume.values()) or 1.0
    return ReplayStats(
        iterations=len(times),
        times=np.asarray(times),
        local_fraction=volume["local"] / total,
        remote_fraction=volume["remote"] / total,
        host_fraction=volume["host"] / total,
    )


def replay_functional(
    cache: MultiGpuEmbeddingCache,
    table: np.ndarray,
    batches: Iterator[list[np.ndarray]],
    mechanism: Mechanism = Mechanism.FACTORED,
    max_iterations: int = 5,
) -> ReplayStats:
    """Replay with full value gathering and byte-exactness assertions."""
    times: list[float] = []
    volume = {"local": 0.0, "remote": 0.0, "host": 0.0}
    for iteration, per_gpu in enumerate(batches):
        if iteration >= max_iterations:
            break
        values, report = cache.extract_all(list(per_gpu), mechanism=mechanism)
        for gathered, keys in zip(values, per_gpu):
            if not np.array_equal(gathered, table[keys]):
                raise AssertionError(
                    f"iteration {iteration}: gathered values diverge from table"
                )
        times.append(report.time)
        split = report.volume_split()
        for key in volume:
            volume[key] += split[key]
    total = sum(volume.values()) or 1.0
    return ReplayStats(
        iterations=len(times),
        times=np.asarray(times),
        local_fraction=volume["local"] / total,
        remote_fraction=volume["remote"] / total,
        host_fraction=volume["host"] / total,
    )
