"""Multi-GPU platform model: GPUs + interconnect + a backing-memory chain.

A :class:`Platform` is the single hardware object the rest of the library
consumes.  It answers three questions for any (destination GPU, source
location) pair:

* ``bandwidth(dst, src)`` — bytes/second the path sustains for one reader;
* ``tolerance(dst, src)`` — how many SMs can read concurrently before the
  link congests (Figure 6's plateau onset);
* ``cost_per_byte(dst, src)`` — the solver's ``T_{i←j}`` coefficient.

Source locations are integers: GPU ids ``0..G-1`` plus *negative* ids for
the ordered backing-tier chain below the GPUs.  Tier ``k`` of
``Platform.tiers`` is source ``-(k + 1)``: host DRAM is tier 0 and keeps
its historical sentinel :data:`HOST` (= -1); deeper tiers (CXL, SSD) get
-2, -3, …  A platform built without an explicit chain has exactly one
tier — host DRAM sized by ``host_memory_bytes`` and reached at
``pcie_bandwidth`` — so every pre-tier consumer behaves byte-identically.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace

import numpy as np

from repro.hardware.spec import GPUSpec, a100_80gb, v100_16gb, v100_32gb
from repro.hardware.topology import (
    Topology,
    TopologyKind,
    dgx1_8gpu,
    hardwired_fully_connected,
    nvswitch,
)
from repro.utils.units import GB, GIB, KIB, MIB, gbps

#: Source id of backing tier 0 — host DRAM reached over PCIe.  Kept as a
#: module constant because it predates the tier chain; ``-(k + 1)`` is the
#: id of tier ``k`` in general (see :meth:`Platform.tier_source_id`).
HOST: int = -1

#: The one dtype every bulk source-location array uses (the location
#: table's lookup results, the cache's dense ``source_map``, the
#: extractor's replica search).  Must hold :data:`HOST` plus every GPU id
#: the packed location format supports (15-bit sources); widen it here —
#: and only here — if a platform ever exceeds that.
SOURCE_DTYPE = np.int16


@dataclass(frozen=True)
class MemoryTier:
    """One level of the backing-memory chain below the GPUs.

    Attributes:
        name: tier label, e.g. ``"dram"``, ``"cxl"``, ``"ssd"``.
        capacity_bytes: how many bytes the tier can hold.
        bandwidth: sustained extraction bandwidth into a GPU, bytes/second.
        latency_s: fixed per-group access latency in seconds, paid once per
            batched read against this tier (0 for DRAM, where the PCIe
            pipe dominates; ~100 µs for an NVMe read).
    """

    name: str
    capacity_bytes: int
    bandwidth: float
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("memory tier needs a name")
        if self.capacity_bytes <= 0:
            raise ValueError(f"tier {self.name!r}: capacity must be positive")
        if self.bandwidth <= 0:
            raise ValueError(f"tier {self.name!r}: bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError(f"tier {self.name!r}: latency must be non-negative")

    @property
    def cost_per_byte(self) -> float:
        """Seconds per byte extracted from this tier (the solver coefficient)."""
        return 1.0 / self.bandwidth


#: Reference (bandwidth, latency) per well-known tier kind.  DRAM's
#: bandwidth is ``None`` — it is bounded by the platform's PCIe pipe, so
#: :func:`parse_tier_spec` substitutes ``pcie_bandwidth`` there.
TIER_KINDS: dict[str, tuple[float | None, float]] = {
    "dram": (None, 0.0),
    "cxl": (gbps(12), 1e-6),
    "ssd": (gbps(6), 100e-6),
}

_TIER_CAPACITY_UNITS = {
    "b": 1,
    "kb": 1_000,
    "mb": 1_000_000,
    "gb": GB,
    "tb": 1_000 * GB,
    "kib": KIB,
    "mib": MIB,
    "gib": GIB,
    "tib": 1024 * GIB,
}


def parse_capacity(text: str) -> int:
    """Parse ``"8GB"`` / ``"1TiB"`` / ``"512MB"`` into bytes."""
    m = re.fullmatch(r"\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]+)\s*", text)
    if not m:
        raise ValueError(f"cannot parse capacity {text!r} (want e.g. '8GB')")
    unit = m.group(2).lower()
    if unit not in _TIER_CAPACITY_UNITS:
        raise ValueError(f"unknown capacity unit {m.group(2)!r} in {text!r}")
    return int(float(m.group(1)) * _TIER_CAPACITY_UNITS[unit])


def parse_tier_spec(
    spec: str, pcie_bandwidth: float = gbps(16)
) -> tuple[MemoryTier, ...]:
    """Parse ``"dram:8GB,ssd:1TB"`` into an ordered tier chain.

    Each comma-separated element is ``kind:capacity[:GB/s[:latency_us]]``;
    ``kind`` picks bandwidth/latency defaults from :data:`TIER_KINDS`
    (DRAM inherits ``pcie_bandwidth``), and the optional trailing fields
    override them.  Order in the spec is the chain order — tier 0 first.
    """
    tiers: list[MemoryTier] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        fields = part.split(":")
        if len(fields) < 2:
            raise ValueError(
                f"tier spec {part!r} needs at least kind:capacity (e.g. 'dram:8GB')"
            )
        kind = fields[0].strip().lower()
        if kind not in TIER_KINDS:
            raise ValueError(
                f"unknown tier kind {kind!r}; known: {sorted(TIER_KINDS)}"
            )
        default_bw, default_lat = TIER_KINDS[kind]
        bandwidth = default_bw if default_bw is not None else pcie_bandwidth
        latency = default_lat
        if len(fields) >= 3 and fields[2].strip():
            bandwidth = gbps(float(fields[2]))
        if len(fields) >= 4 and fields[3].strip():
            latency = float(fields[3]) * 1e-6
        tiers.append(
            MemoryTier(
                name=kind,
                capacity_bytes=parse_capacity(fields[1]),
                bandwidth=bandwidth,
                latency_s=latency,
            )
        )
    if not tiers:
        raise ValueError(f"tier spec {spec!r} names no tiers")
    return tuple(tiers)


@dataclass(frozen=True)
class Platform:
    """A single machine with ``G`` identical GPUs, an interconnect and host DRAM.

    Attributes:
        name: display name, e.g. ``"server-c"``.
        gpu: spec shared by all GPUs (the paper's testbeds are homogeneous).
        topology: inter-GPU fabric.
        host_memory_bytes: host DRAM capacity.
        pcie_bandwidth: sustained host→GPU extraction bandwidth over PCIe,
            bytes/second.  The paper's Figure 6 shows host extraction
            plateauing below 10% of SMs at roughly PCIe wire speed.
    """

    name: str
    gpu: GPUSpec
    topology: Topology
    host_memory_bytes: int = 512 * GIB
    pcie_bandwidth: float = gbps(16)
    #: Ordered backing chain below the GPUs; tier ``k`` is source
    #: ``-(k + 1)``.  Defaults to a single host-DRAM tier built from
    #: ``host_memory_bytes`` / ``pcie_bandwidth``, which keeps every
    #: pre-tier consumer byte-identical.  When a chain is supplied, tier 0
    #: becomes the authoritative host tier and ``host_memory_bytes`` /
    #: ``pcie_bandwidth`` are synchronized to it.
    tiers: tuple[MemoryTier, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.pcie_bandwidth <= 0:
            raise ValueError("PCIe bandwidth must be positive")
        if self.host_memory_bytes <= 0:
            raise ValueError("host memory must be positive")
        if not self.tiers:
            object.__setattr__(
                self,
                "tiers",
                (
                    MemoryTier(
                        name="dram",
                        capacity_bytes=self.host_memory_bytes,
                        bandwidth=self.pcie_bandwidth,
                    ),
                ),
            )
        else:
            object.__setattr__(self, "tiers", tuple(self.tiers))
            # Tier 0 is the host tier; keep the legacy scalar fields in
            # lock-step so `bandwidth(dst, HOST)` has exactly one answer.
            object.__setattr__(
                self, "host_memory_bytes", self.tiers[0].capacity_bytes
            )
            object.__setattr__(self, "pcie_bandwidth", self.tiers[0].bandwidth)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def num_gpus(self) -> int:
        return self.topology.num_gpus

    @property
    def gpu_ids(self) -> range:
        return range(self.num_gpus)

    # ------------------------------------------------------------------
    # Backing-tier chain
    # ------------------------------------------------------------------
    @property
    def num_tiers(self) -> int:
        return len(self.tiers)

    @property
    def backing_ids(self) -> list[int]:
        """Source ids of the backing chain in tier order: [-1, -2, …]."""
        return [-(k + 1) for k in range(len(self.tiers))]

    @staticmethod
    def tier_source_id(index: int) -> int:
        """Source id of tier ``index`` (tier 0 → :data:`HOST`)."""
        return -(index + 1)

    @staticmethod
    def tier_index(src: int) -> int:
        """Chain index of backing source ``src`` (:data:`HOST` → 0)."""
        return -src - 1

    def is_gpu(self, src: int) -> bool:
        """Whether ``src`` is a GPU id on this platform."""
        return 0 <= src < self.num_gpus

    def is_backing(self, src: int) -> bool:
        """Whether ``src`` names a tier of this platform's backing chain.

        The centralized form of the old ``src == HOST`` test: on a
        single-tier platform they are equivalent, and on a deeper chain
        every valid negative tier id answers True — which is what keeps
        the pipeline's corrupt-source check from mistaking tier ids for
        garbage.
        """
        return -len(self.tiers) <= src <= -1

    def tier_of(self, src: int) -> MemoryTier:
        """The :class:`MemoryTier` behind backing source ``src``."""
        if not self.is_backing(src):
            raise ValueError(f"source {src} is not a backing tier")
        return self.tiers[self.tier_index(src)]

    def tier_latency(self, src: int) -> float:
        """Per-group access latency of ``src`` (0 for GPU sources)."""
        if self.is_backing(src):
            return self.tiers[self.tier_index(src)].latency_s
        return 0.0

    def backing_mask(self, sources: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`is_backing` over a source array."""
        sources = np.asarray(sources)
        return (sources <= -1) & (sources >= -len(self.tiers))

    def valid_source_mask(self, sources: np.ndarray) -> np.ndarray:
        """True where a source id names a real GPU or backing tier.

        The complement is the pipeline's corrupt-source mask; keeping it
        here means a new tier can never be mistaken for a corrupt id.
        """
        sources = np.asarray(sources)
        return ((sources >= 0) & (sources < self.num_gpus)) | self.backing_mask(
            sources
        )

    def sources_for(self, dst: int) -> list[int]:
        """All source locations GPU ``dst`` can extract from.

        Order is derived from measured ``cost_per_byte`` rather than a
        hardcoded ``[dst, *peers, HOST]`` literal: local HBM first (always
        the cheapest path), then the NVLink fabric's peers (kept in
        topology order — ties at fabric granularity stay deterministic and
        LP-column stable), then the backing chain sorted cheapest-first.
        On every pre-tier preset this reproduces the historical order
        exactly; a chain declared out of cost order (ssd before cxl) is
        straightened here.  Unconnected peers are excluded — reads to them
        are serviced from the backing chain instead (the paper drops the
        corresponding ``t^j_i`` terms).
        """
        self._check_gpu(dst)
        remote = [j for j in self.topology.peers(dst)]
        backing = sorted(
            self.backing_ids, key=lambda s: (self.cost_per_byte(dst, s), -s)
        )
        return [dst, *remote, *backing]

    def is_connected(self, dst: int, src: int) -> bool:
        """Whether ``dst`` can read ``src`` without falling back to PCIe."""
        self._check_gpu(dst)
        if self.is_backing(src) or src == dst:
            return True
        self._check_gpu(src)
        return self.topology.connected(dst, src)

    # ------------------------------------------------------------------
    # Bandwidth model
    # ------------------------------------------------------------------
    def bandwidth(self, dst: int, src: int) -> float:
        """Peak path bandwidth for GPU ``dst`` reading from ``src``, bytes/s.

        For a switch fabric this is the fair share ``outbound / (G - 1)``:
        UGache's factored extraction dedicates exactly that slice per
        reader so shares never overlap (§5.3); it is also the sustainable
        long-run rate when all GPUs extract simultaneously, which is the
        regime every experiment in §8 runs in.
        """
        self._check_gpu(dst)
        if src == dst:
            return self.gpu.local_bandwidth
        if self.is_backing(src):
            return self.tiers[self.tier_index(src)].bandwidth
        self._check_gpu(src)
        if not self.topology.connected(dst, src):
            return 0.0
        if self.topology.kind is TopologyKind.SWITCH:
            return self.topology.outbound_bandwidth(src) / (self.num_gpus - 1)
        return self.topology.pair_bandwidth(dst, src)

    def peak_pair_bandwidth(self, dst: int, src: int) -> float:
        """Uncontended single-flow bandwidth (used by the congestion model).

        Unlike :meth:`bandwidth`, on a switch platform a *lone* reader can
        pull the source's full outbound bandwidth.
        """
        self._check_gpu(dst)
        if src == dst:
            return self.gpu.local_bandwidth
        if self.is_backing(src):
            return self.tiers[self.tier_index(src)].bandwidth
        self._check_gpu(src)
        if not self.topology.connected(dst, src):
            return 0.0
        return self.topology.pair_bandwidth(dst, src)

    def tolerance(self, dst: int, src: int) -> int:
        """Number of SMs of ``dst`` that saturate the path to ``src``.

        This is the plateau onset of Figure 6: a link of bandwidth ``B``
        tolerates ``B / per_core_bandwidth`` concurrent SMs; additional
        SMs stall.  Local memory tolerates all SMs by construction.
        """
        bw = self.bandwidth(dst, src)
        if bw <= 0:
            return 0
        cores = int(round(bw / self.gpu.per_core_bandwidth))
        return max(1, min(cores, self.gpu.num_cores))

    def cost_per_byte(self, dst: int, src: int) -> float:
        """The solver coefficient ``T_{i←j}``: seconds per byte extracted.

        Infinite (``float('inf')``) for unconnected pairs; the solver drops
        those terms.
        """
        bw = self.bandwidth(dst, src)
        if bw <= 0:
            return float("inf")
        return 1.0 / bw

    # ------------------------------------------------------------------
    # Capacity helpers
    # ------------------------------------------------------------------
    def cache_capacity_entries(
        self, entry_bytes: int, cache_ratio: float, total_entries: int
    ) -> int:
        """Entries one GPU may cache at ``cache_ratio`` of the table.

        The paper sweeps "cache ratio per GPU" = fraction of all entries
        each GPU can hold; this converts it to a per-GPU entry budget.
        """
        if entry_bytes <= 0:
            raise ValueError("entry size must be positive")
        if not 0 <= cache_ratio <= 1:
            raise ValueError(f"cache ratio must be in [0, 1], got {cache_ratio}")
        return int(cache_ratio * total_entries)

    def max_cache_ratio(self, entry_bytes: int, total_entries: int, reserved_bytes: int = 0) -> float:
        """Largest per-GPU cache ratio that fits in GPU memory."""
        usable = self.gpu.memory_bytes - reserved_bytes
        if usable <= 0:
            return 0.0
        return min(1.0, usable / (entry_bytes * total_entries))

    def _check_gpu(self, i: int) -> None:
        if not 0 <= i < self.num_gpus:
            raise ValueError(f"GPU id {i} out of range for {self.num_gpus}-GPU platform")


# ----------------------------------------------------------------------
# Paper testbed presets (§8.1)
# ----------------------------------------------------------------------
def server_a() -> Platform:
    """Server A: 4×V100-16GB, hard-wired fully connected, 384 GB host."""
    return Platform(
        name="server-a",
        gpu=v100_16gb(),
        topology=hardwired_fully_connected(4, lanes_per_gpu=6),
        host_memory_bytes=384 * GIB,
        pcie_bandwidth=gbps(16),
    )


def server_b() -> Platform:
    """Server B: 8×V100-32GB on a DGX-1 board, 724 GB host."""
    return Platform(
        name="server-b",
        gpu=v100_32gb(),
        topology=dgx1_8gpu(),
        host_memory_bytes=724 * GIB,
        pcie_bandwidth=gbps(16),
    )


def server_c() -> Platform:
    """Server C: 8×A100-80GB behind NVSwitch, 1 TB host."""
    return Platform(
        name="server-c",
        gpu=a100_80gb(),
        topology=nvswitch(8, lanes_per_gpu=12),
        host_memory_bytes=1024 * GIB,
        pcie_bandwidth=gbps(24),
    )


def single_gpu(gpu: GPUSpec | None = None, pcie_bandwidth: float = gbps(24)) -> Platform:
    """A one-GPU platform (Table 1's testbed) — no interconnect.

    The topology is an empty 1×1 lane matrix: the only sources are local
    HBM and host DRAM over PCIe.
    """
    import numpy as np

    spec = gpu or a100_80gb()
    topo = Topology(
        kind=TopologyKind.HARDWIRED,
        lane_counts=np.zeros((1, 1), dtype=np.int64),
        lane_bandwidth=spec.nvlink_lane_bandwidth,
        outbound_lanes=0,
        name="single-gpu",
    )
    return Platform(
        name="single-gpu",
        gpu=spec,
        topology=topo,
        pcie_bandwidth=pcie_bandwidth,
    )


def dgx2() -> Platform:
    """A DGX-2-like box: 16×V100-32GB behind NVSwitch (beyond the paper's
    testbeds; used by the generalization benchmark)."""
    return Platform(
        name="dgx2",
        gpu=v100_32gb(),
        topology=nvswitch(16, lanes_per_gpu=6),
        host_memory_bytes=1536 * GIB,
        pcie_bandwidth=gbps(16),
    )


def pcie_only(num_gpus: int = 4) -> Platform:
    """A commodity multi-GPU box with no NVLink at all.

    Every GPU pair is unconnected, so the only sources are local HBM and
    host DRAM — the degenerate platform where any partition policy
    collapses and UGache must fall back to pure replication.
    """
    import numpy as np

    spec = v100_16gb()
    topo = Topology(
        kind=TopologyKind.HARDWIRED,
        lane_counts=np.zeros((num_gpus, num_gpus), dtype=np.int64),
        lane_bandwidth=spec.nvlink_lane_bandwidth,
        outbound_lanes=0,
        name=f"pcie-only-{num_gpus}gpu",
    )
    return Platform(
        name=f"pcie-only-{num_gpus}gpu",
        gpu=spec,
        topology=topo,
        pcie_bandwidth=gbps(16),
    )


# ----------------------------------------------------------------------
# Tiered-memory presets (beyond the paper: HugeCTR-HPS-style hierarchies)
# ----------------------------------------------------------------------
def dram_tier(capacity_bytes: int, bandwidth: float = gbps(16)) -> MemoryTier:
    """Host DRAM reached over PCIe — tier 0 of every chain."""
    return MemoryTier(name="dram", capacity_bytes=capacity_bytes, bandwidth=bandwidth)


def cxl_tier(capacity_bytes: int) -> MemoryTier:
    """CXL-attached expansion memory: near-PCIe bandwidth, µs latency."""
    bw, lat = TIER_KINDS["cxl"]
    return MemoryTier(name="cxl", capacity_bytes=capacity_bytes, bandwidth=bw, latency_s=lat)


def ssd_tier(capacity_bytes: int) -> MemoryTier:
    """NVMe SSD: the terminal capacity tier, ~100 µs per batched read."""
    bw, lat = TIER_KINDS["ssd"]
    return MemoryTier(name="ssd", capacity_bytes=capacity_bytes, bandwidth=bw, latency_s=lat)


def with_tiers(platform: Platform, tiers: tuple[MemoryTier, ...]) -> Platform:
    """``platform`` with its backing chain replaced by ``tiers``."""
    return replace(platform, tiers=tuple(tiers))


def server_a_tiered() -> Platform:
    """Server A as a parameter server: 64 GB DRAM backed by a 1 TB SSD.

    The HPS shape — embedding tables far larger than host DRAM, with the
    cold tail demoted to NVMe.
    """
    base = server_a()
    return with_tiers(
        base,
        (
            dram_tier(64 * GIB, bandwidth=base.pcie_bandwidth),
            ssd_tier(1_000 * GB),
        ),
    )


def server_c_tiered() -> Platform:
    """Server C with a three-deep chain: DRAM → CXL → SSD."""
    base = server_c()
    return with_tiers(
        base,
        (
            dram_tier(128 * GIB, bandwidth=base.pcie_bandwidth),
            cxl_tier(512 * GIB),
            ssd_tier(2_000 * GB),
        ),
    )


#: Registry used by benchmarks to iterate the paper's testbeds.
PRESETS = {
    "server-a": server_a,
    "server-b": server_b,
    "server-c": server_c,
}

#: Extension platforms beyond the paper (generalization benchmark).
EXTRA_PLATFORMS = {
    "dgx2": dgx2,
    "pcie-only": pcie_only,
    "server-a-tiered": server_a_tiered,
    "server-c-tiered": server_c_tiered,
}
