"""Command-line interface: ``python -m repro <command>``.

Sub-commands:

* ``platforms`` — describe the modelled testbeds (topology, bandwidths,
  tolerances);
* ``solve`` — run the cache-policy solver on a synthetic Zipf workload and
  print the placement summary and Figure-8 Gantt chart;
* ``experiment`` — run one of the paper's table/figure drivers by id
  (``fig2``, ``fig10``, ``table1``, …) and print its rows;
* ``list-experiments`` — enumerate available experiment ids;
* ``metrics`` — summarize a metrics artifact written by ``--metrics-out``.

``solve`` and ``experiment`` accept ``--metrics-out PATH`` to capture the
run's instrumentation (cache hit splits, per-GPU extraction timings,
solver build/solve times) into a JSON artifact.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.bench import experiments as _experiments
from repro.bench.harness import ExperimentResult, render_table, run_with_metrics

#: Experiment id → driver.  Kept explicit so ``--help`` is self-documenting.
EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "table1": _experiments.table1_breakdown,
    "fig2": _experiments.fig2_policy_motivation,
    "fig4": _experiments.fig4_mechanism_motivation,
    "fig6": _experiments.fig6_core_tolerance,
    "fig10": _experiments.fig10_end_to_end,
    "fig11": _experiments.fig11_extraction_time,
    "fig12": _experiments.fig12_incremental,
    "fig13": _experiments.fig13_link_utilization,
    "fig14": _experiments.fig14_access_split,
    "fig15": _experiments.fig15_time_split,
    "fig16": _experiments.fig16_vs_optimal,
    "fig17": _experiments.fig17_refresh,
    "table3": _experiments.table3_datasets,
    "solver-scale": _experiments.misc_solver_scale,
    "ablation-padding": _experiments.ablation_padding,
    "ablation-blocking": _experiments.ablation_blocking,
}


def _cmd_platforms(args: argparse.Namespace) -> int:
    from repro.hardware import PRESETS, tolerance_curves

    for name, factory in PRESETS.items():
        platform = factory()
        print(f"{name}: {platform.num_gpus}x {platform.gpu.name} "
              f"({platform.topology.kind.value}), "
              f"PCIe {platform.pcie_bandwidth / 1e9:.0f} GB/s")
        for curve in tolerance_curves(platform, dst=0):
            print(f"  {curve.source_label:22s} "
                  f"{curve.plateau_bandwidth / 1e9:6.1f} GB/s "
                  f"@ {curve.saturation_cores}/{platform.gpu.num_cores} SMs")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.bench.contexts import platform_by_name
    from repro.core.evaluate import evaluate_placement, expected_demands, hit_rates
    from repro.core.solver import SolverConfig, solve_policy
    from repro.obs import MetricsRegistry, use_registry, write_json
    from repro.sim.trace import trace_factored
    from repro.utils.stats import zipf_pmf

    registry = MetricsRegistry("solve")
    with use_registry(registry):
        platform = platform_by_name(args.platform)
        hotness = zipf_pmf(args.entries, args.alpha) * args.batch_keys
        capacity = int(args.cache_ratio * args.entries)
        solved = solve_policy(
            platform,
            hotness,
            capacity,
            args.entry_bytes,
            SolverConfig(coarse_block_frac=args.coarse_frac),
        )
        placement = solved.realize()
        hits = hit_rates(platform, placement, hotness)
        report = evaluate_placement(platform, placement, hotness, args.entry_bytes)
        demand = expected_demands(platform, placement, hotness, args.entry_bytes)[0]
    print(f"solved in {solved.solve_seconds:.2f}s: "
          f"{solved.blocks.num_blocks} blocks, "
          f"{solved.num_variables} variables")
    print(f"estimated extraction time: {solved.est_time * 1e3:.4f} ms/iteration")
    print(f"realized placement extraction time: {report.time * 1e3:.4f} ms/iteration")
    print(f"replication factor: {placement.replication_factor():.2f}; "
          f"hit rates: local {hits.local:.1%} / remote {hits.remote:.1%} / "
          f"host {hits.host:.1%}")
    print()
    print(trace_factored(platform, demand).gantt())
    if args.metrics_out:
        path = write_json(registry, args.metrics_out)
        print(f"metrics written to {path}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    driver = EXPERIMENTS.get(args.id)
    if driver is None:
        print(f"unknown experiment {args.id!r}; "
              f"try: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    result = run_with_metrics(driver, metrics_out=args.metrics_out)
    print(render_table(result))
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    for name in EXPERIMENTS:
        print(name)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.faults.chaos import (
        SCENARIO_DESCRIPTIONS,
        SCENARIOS,
        ChaosConfig,
        render_results,
        run_matrix,
        summarize_results,
    )
    from repro.obs import MetricsRegistry, use_registry, write_json

    if args.list_scenarios:
        width = max(len(name) for name in SCENARIOS)
        for name in SCENARIOS:
            print(f"{name:{width}s}  {SCENARIO_DESCRIPTIONS.get(name, '')}")
        return 0
    scenarios = list(SCENARIOS) if args.scenario == "all" else [args.scenario]
    cfg = (
        ChaosConfig.quick(seed=args.seed)
        if args.quick
        else ChaosConfig(seed=args.seed)
    )
    registry = MetricsRegistry("chaos")
    with use_registry(registry):
        results = run_matrix(scenarios, cfg)
    print(render_results(results, tolerance=args.recovery_tolerance))
    summary = summarize_results(results, tolerance=args.recovery_tolerance)
    if summary["unrecovered"]:
        print(
            "scenarios that never recovered (post-fault latency > "
            f"{args.recovery_tolerance:.2f}x baseline): "
            + ", ".join(summary["unrecovered"]),
            file=sys.stderr,
        )
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"summary written to {args.json_out}")
    if args.metrics_out:
        path = write_json(registry, args.metrics_out)
        print(f"metrics written to {path}")
    return 0 if summary["ok"] else 1


def _cmd_soak(args: argparse.Namespace) -> int:
    import json

    from repro.obs import MetricsRegistry, use_registry, write_json
    from repro.serve.coalesce import BatchingMode
    from repro.serve.queueing import QueuePolicy
    from repro.serve.soak import SoakConfig, render_soak_report, run_soak

    overrides = dict(
        scenario=args.scenario,
        load=args.load,
        closed_loop=args.closed_loop,
        clients=args.clients,
        queue_policy=QueuePolicy(args.queue_policy),
        batching=BatchingMode(args.batching),
        max_batch=args.max_batch,
        workers=args.workers,
        lookahead=args.lookahead,
        prefetch_capacity=args.prefetch_capacity,
        nodes=args.nodes,
        replication=args.replication,
        placement=args.placement,
        repair=args.repair,
        restage=args.restage,
        tiers=args.tiers,
        drift=args.drift,
        adapt=args.adapt,
        seed=args.seed,
    )
    if args.tenants is not None:
        overrides["tenants"] = args.tenants
    elif args.scenario == "hps-multitenant":
        overrides["tenants"] = 3
    if args.requests is not None:
        overrides["requests_per_gpu"] = args.requests
    if args.linger_ms is not None:
        overrides["linger_ms"] = args.linger_ms
    try:
        cfg = (
            SoakConfig.quick(**overrides)
            if args.quick
            else SoakConfig(**overrides)
        )
    except ValueError as exc:
        print(f"bad soak configuration: {exc}", file=sys.stderr)
        return 2
    registry = MetricsRegistry("soak")
    with use_registry(registry):
        report = run_soak(cfg)
    print(render_soak_report(report))
    if args.compare_lookahead and cfg.lookahead > 0:
        # Same trace without prefetching: the goodput delta is the
        # lookahead stage's contribution, everything else held equal.
        from dataclasses import replace

        with use_registry(MetricsRegistry("soak-baseline")):
            baseline = run_soak(replace(cfg, lookahead=0))
        delta = report.goodput_rps - baseline.goodput_rps
        pct = (
            100.0 * delta / baseline.goodput_rps
            if baseline.goodput_rps
            else 0.0
        )
        print(
            f"  vs lookahead 0: goodput {baseline.goodput_rps:.1f} -> "
            f"{report.goodput_rps:.1f} req/s ({delta:+.1f}, {pct:+.1f}%), "
            f"hit rate {report.prefetch_hit_rate:.1%} vs 0.0%"
        )
    if args.compare_restage and cfg.repair and cfg.restage == "staged":
        # Same chaos, burst refill instead: the recovery-window goodput
        # delta is what the rate-limited staging buys.
        from dataclasses import replace

        with use_registry(MetricsRegistry("soak-baseline")):
            baseline = run_soak(replace(cfg, restage="burst"))
        print(
            f"  vs burst re-stage: recovery-window goodput "
            f"{baseline.recovery_goodput_ratio:.1%} -> "
            f"{report.recovery_goodput_ratio:.1%} of steady "
            f"({report.recovery_requests} vs "
            f"{baseline.recovery_requests} requests in window)"
        )
    adapt_regressed = False
    if args.compare_adapt and cfg.drift is not None and cfg.adapt:
        # Same drifting trace with adaptation off: the transition-window
        # goodput delta is what the detector → incremental-re-solve →
        # guarded-swap loop buys, everything else held equal.
        from dataclasses import replace

        with use_registry(MetricsRegistry("soak-baseline")):
            baseline = run_soak(replace(cfg, adapt=False))
        print(
            f"  vs adapt off: transition-window goodput "
            f"{baseline.transition_goodput_ratio:.1%} -> "
            f"{report.transition_goodput_ratio:.1%} of steady "
            f"(ok rate {baseline.transition_ok_rate:.1%} -> "
            f"{report.transition_ok_rate:.1%} over "
            f"{report.transition_requests} requests)"
        )
        adapt_regressed = (
            report.transition_goodput_ratio
            < baseline.transition_goodput_ratio
        )
        if adapt_regressed:
            print(
                "  FAIL: adaptation did not beat the unadapted baseline "
                "inside the transition windows",
                file=sys.stderr,
            )
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"summary written to {args.json_out}")
    if args.metrics_out:
        path = write_json(registry, args.metrics_out)
        print(f"metrics written to {path}")
    return 0 if report.ok and not adapt_regressed else 1


def _cmd_tiers(args: argparse.Namespace) -> int:
    """What-if across backing-tier budgets: where the table lands on each
    chain and what that does to goodput and tail latency.

    Runs the same steady quick soak once per spec (same seed, same
    trace), so the only thing that moves between rows is the chain.
    """
    import json

    from repro.obs import MetricsRegistry, use_registry
    from repro.serve.soak import SoakConfig, run_soak

    rows = []
    for spec in args.specs:
        overrides = dict(
            scenario="steady", tiers=spec, load=args.load, seed=args.seed
        )
        if args.tenants is not None:
            overrides["tenants"] = args.tenants
        if args.entries is not None:
            overrides["num_entries"] = args.entries
        if args.entry_bytes is not None:
            overrides["entry_bytes"] = args.entry_bytes
        if args.requests is not None:
            overrides["requests_per_gpu"] = args.requests
        try:
            cfg = SoakConfig.quick(**overrides)
        except (TypeError, ValueError) as exc:
            print(f"bad tier spec {spec!r}: {exc}", file=sys.stderr)
            return 2
        with use_registry(MetricsRegistry("tiers")):
            report = run_soak(cfg)
        rows.append((spec, report))

    base = rows[0][1]
    print(
        f"tier budget what-if: steady soak, {base.requests} requests, "
        f"seed {args.seed} (p99 relative to the first chain)"
    )
    print(
        f"{'chain':36s} {'homed (backing)':30s} "
        f"{'goodput':>11s} {'p99':>11s} {'vs first':>9s}"
    )
    for spec, r in rows:
        homed = (
            ", ".join(f"{n} {s:.0%}" for n, s in r.tier_shares.items())
            or f"{spec.split(':', 1)[0]} 100%"
        )
        rel = r.p99_latency / base.p99_latency if base.p99_latency else 1.0
        flag = "" if r.ok else "  FAIL"
        print(
            f"{spec:36s} {homed:30s} {r.goodput_rps:9.1f}/s "
            f"{r.p99_latency:11.3e} {rel:8.2f}x{flag}"
        )
    if args.json_out:
        doc = {
            "schema": "repro.tiers/v1",
            "seed": args.seed,
            "rows": [
                {"spec": spec, **r.to_dict()} for spec, r in rows
            ],
        }
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"summary written to {args.json_out}")
    return 0 if all(r.ok for _, r in rows) else 1


def _cmd_cluster(args: argparse.Namespace) -> int:
    import json

    import numpy as np

    from repro.cluster.frontend import ClusterConfig, ClusterFrontend
    from repro.cluster.placement import analyze_node_loss
    from repro.utils.stats import zipf_pmf

    try:
        cfg = ClusterConfig(
            nodes=args.nodes,
            replication=args.replication,
            placement=args.placement,
            seed=args.seed,
        )
    except ValueError as exc:
        print(f"bad cluster shape: {exc}", file=sys.stderr)
        return 2
    pmf = zipf_pmf(args.entries, args.alpha)
    hotness = pmf * args.entries  # scale-free: only ratios matter here
    placement = ClusterFrontend.build_placement(cfg, hotness)
    entries = np.arange(args.entries, dtype=np.int64)
    primary = placement.owners_for(entries)[:, 0]
    total_hot = float(hotness.sum())

    print(
        f"cluster placement: {cfg.placement}, {cfg.nodes} nodes, "
        f"replication {cfg.replication}, {args.entries} entries "
        f"(zipf alpha={args.alpha})"
    )
    print(f"{'node':>4s} {'key share':>9s} {'load share':>10s}")
    for node in range(cfg.nodes):
        mine = primary == node
        key_share = float(mine.sum()) / args.entries
        load_share = float(hotness[mine].sum()) / total_hot if total_hot else 0.0
        print(f"{node:4d} {key_share:8.1%} {load_share:9.1%}")

    impact = analyze_node_loss(placement, range(cfg.nodes), args.entries)
    print("\nwhat-if: losing one node")
    print(
        f"{'node':>4s} {'moved':>7s} {'replica-covered':>15s} "
        f"{'uncovered':>9s} {'survivor max share':>18s}"
    )
    for row in impact:
        print(
            f"{row['node']:4d} {row['moved_primaries']:7d} "
            f"{row['replica_covered']:14.1%} {row['uncovered_keys']:9d} "
            f"{row['post_loss_max_share']:17.1%}"
        )
    if args.json_out:
        doc = {
            "schema": "repro.cluster/v1",
            "nodes": cfg.nodes,
            "replication": cfg.replication,
            "placement": cfg.placement,
            "entries": args.entries,
            "node_loss": impact,
        }
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"summary written to {args.json_out}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs import load_metrics, summarize

    try:
        doc = load_metrics(args.path)
    except (OSError, ValueError) as exc:
        print(f"cannot read metrics artifact {args.path!r}: {exc}", file=sys.stderr)
        return 2
    print(summarize(doc))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UGache (SOSP 2023) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("platforms", help="describe the modelled testbeds")
    p.set_defaults(func=_cmd_platforms)

    p = sub.add_parser("solve", help="solve a cache policy for a Zipf workload")
    p.add_argument("--platform", default="server-c",
                   choices=["server-a", "server-b", "server-c"])
    p.add_argument("--entries", type=int, default=50_000)
    p.add_argument("--alpha", type=float, default=1.2,
                   help="Zipf skew of the access distribution")
    p.add_argument("--cache-ratio", type=float, default=0.08,
                   help="per-GPU capacity as a fraction of all entries")
    p.add_argument("--entry-bytes", type=int, default=512)
    p.add_argument("--batch-keys", type=float, default=100_000,
                   help="expected keys per batch per GPU")
    p.add_argument("--coarse-frac", type=float, default=0.01,
                   help="coarse blocking cap (paper: 0.005)")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write the run's metrics as a JSON artifact")
    p.set_defaults(func=_cmd_solve)

    p = sub.add_parser("experiment", help="run one paper table/figure driver")
    p.add_argument("id", help="experiment id, e.g. fig2, fig10, table1")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write the run's metrics as a JSON artifact")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("list-experiments", help="list experiment ids")
    p.set_defaults(func=_cmd_list)

    from repro.faults.chaos import SCENARIOS as _CHAOS_SCENARIOS

    p = sub.add_parser("chaos", help="run the fault-injection scenario matrix")
    p.add_argument("--scenario", default="all",
                   choices=["all", *_CHAOS_SCENARIOS],
                   help="one scenario, or 'all' for the full matrix "
                        "(node_* scenarios drill the 3-node cluster tier)")
    p.add_argument("--list-scenarios", action="store_true",
                   help="print every scenario with a one-line description "
                        "and exit")
    p.add_argument("--quick", action="store_true",
                   help="CI-sized workload (seconds, not minutes)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the workload and the fault plan")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write the run's metrics as a JSON artifact")
    p.add_argument("--json-out", default=None, metavar="PATH",
                   help="write a machine-readable matrix summary")
    p.add_argument("--recovery-tolerance", type=float, default=1.25,
                   help="fail scenarios whose post-fault latency stays "
                        "above this multiple of baseline")
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "soak", help="sustained serving-load soak with chaos and policy swaps"
    )
    p.add_argument("--scenario", default="dgx_a100_partial_failure",
                   choices=["steady", "dgx_a100_partial_failure",
                            "corrupt-slot-storm", "host-stall",
                            "node-kill", "node-flap", "node-partition",
                            "node-slow", "node-kill-bit-rot",
                            "hps-multitenant"],
                   help="node-* scenarios require --nodes > 1; "
                        "hps-multitenant runs the parameter-server shape "
                        "(tiered backing, multi-model trace)")
    p.add_argument("--tiers", default=None, metavar="SPEC",
                   help="backing-tier chain override, e.g. "
                        "'dram:8GB,ssd:1TB' (kind:capacity[:GB/s[:lat_us]] "
                        "per tier, tier 0 first)")
    p.add_argument("--tenants", type=int, default=None, metavar="N",
                   help="models sharing the table, each with its own Zipf "
                        "head (default: 3 for hps-multitenant, else 1)")
    p.add_argument("--nodes", type=int, default=1,
                   help="cache-server nodes; > 1 soaks the cluster tier")
    p.add_argument("--replication", type=int, default=1,
                   help="replicas per key across nodes (<= --nodes)")
    p.add_argument("--placement", default="ring",
                   choices=["ring", "solver"],
                   help="keyspace partitioning: consistent-hash ring or "
                        "solver-driven node placement")
    p.add_argument("--quick", action="store_true",
                   help="CI-sized soak (seconds of wall time)")
    p.add_argument("--requests", type=int, default=None, metavar="N",
                   help="requests per GPU (sets the run length)")
    p.add_argument("--load", type=float, default=0.8,
                   help="offered load per GPU as a fraction of capacity; "
                        ">1 is sustained overload")
    p.add_argument("--closed-loop", action="store_true",
                   help="closed-loop clients instead of open-loop Poisson")
    p.add_argument("--clients", type=int, default=4,
                   help="outstanding clients per GPU (closed loop)")
    p.add_argument("--queue-policy", default="reject",
                   choices=["block", "reject", "shed-oldest"],
                   help="backpressure when a GPU queue fills")
    p.add_argument("--batching", default="off",
                   choices=["off", "coalesce"],
                   help="cross-request coalescing of each GPU's queue "
                        "(off reproduces the un-batched path exactly)")
    p.add_argument("--max-batch", type=int, default=8,
                   help="most requests fused into one extraction")
    p.add_argument("--linger-ms", type=float, default=None, metavar="MS",
                   help="micro-batch linger in milliseconds (default: "
                        "half the baseline service time)")
    p.add_argument("--workers", type=int, default=1,
                   help=">1 serves the GPUs on concurrent worker threads "
                        "(open-loop only)")
    p.add_argument("--lookahead", type=int, default=0, metavar="K",
                   help="batches the oracle cacher peeks ahead in the "
                        "trace; 0 disables prefetching (open-loop only)")
    p.add_argument("--prefetch-capacity", type=int, default=4096,
                   metavar="ENTRIES",
                   help="per-GPU staging-buffer bound for the prefetcher")
    p.add_argument("--compare-lookahead", action="store_true",
                   help="also run the same soak with --lookahead 0 and "
                        "print the goodput delta")
    p.add_argument("--repair", action="store_true",
                   help="enable the self-healing layer: anti-entropy "
                        "scrubbing, read guards, staged recovery, and the "
                        "node-lifecycle watchdog (requires --nodes > 1)")
    p.add_argument("--restage", default="staged",
                   choices=["staged", "burst"],
                   help="how a healed node refills its GPU caches: "
                        "hotness-ordered blocks under an idle-link budget, "
                        "or all at once (the baseline)")
    p.add_argument("--compare-restage", action="store_true",
                   help="with --repair: also run the burst baseline and "
                        "print the recovery-window goodput delta")
    p.add_argument("--drift", default=None,
                   choices=["rotating-head", "table-shift", "flash-crowd"],
                   help="hotness-drift scenario: the key distribution "
                        "changes mid-run on a piecewise schedule")
    p.add_argument("--adapt", action="store_true",
                   help="with --drift: online adaptation (streaming "
                        "hotness estimator, drift detector, incremental "
                        "warm-started re-solves through the guarded swap "
                        "path)")
    p.add_argument("--compare-adapt", action="store_true",
                   help="with --drift --adapt: also run the same drifting "
                        "trace with adaptation off and gate on the "
                        "transition-window goodput delta")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json-out", default=None, metavar="PATH",
                   help="write the soak report as JSON")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write the run's metrics as a JSON artifact")
    p.set_defaults(func=_cmd_soak)

    p = sub.add_parser(
        "tiers",
        help="what-if: placement, goodput, and p99 across backing-tier "
             "budgets",
    )
    p.add_argument("specs", nargs="*",
                   default=["dram:1MB", "dram:96KB,ssd:1GB",
                            "dram:32KB,ssd:1GB"],
                   help="tier chains to compare, e.g. 'dram:8GB,ssd:1TB' "
                        "(defaults sized for the quick soak's 192 KB table)")
    p.add_argument("--entries", type=int, default=None,
                   help="table entries (default: quick soak's 3000)")
    p.add_argument("--entry-bytes", type=int, default=None,
                   help="bytes per entry (default: quick soak's 64)")
    p.add_argument("--requests", type=int, default=None, metavar="N",
                   help="requests per GPU")
    p.add_argument("--load", type=float, default=0.8,
                   help="offered load per GPU as a fraction of capacity")
    p.add_argument("--tenants", type=int, default=None, metavar="N",
                   help="models sharing the table (default 1)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json-out", default=None, metavar="PATH",
                   help="write every chain's soak report as JSON")
    p.set_defaults(func=_cmd_tiers)

    p = sub.add_parser(
        "cluster",
        help="analyze a cluster placement: shares and node-loss what-ifs",
    )
    p.add_argument("--nodes", type=int, default=3)
    p.add_argument("--replication", type=int, default=2)
    p.add_argument("--placement", default="ring",
                   choices=["ring", "solver"])
    p.add_argument("--entries", type=int, default=20_000)
    p.add_argument("--alpha", type=float, default=1.1,
                   help="Zipf skew of the hotness profile")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json-out", default=None, metavar="PATH",
                   help="write the analysis as JSON")
    p.set_defaults(func=_cmd_cluster)

    p = sub.add_parser("metrics", help="summarize a metrics artifact")
    p.add_argument("path", help="artifact written by --metrics-out")
    p.set_defaults(func=_cmd_metrics)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
