"""Common harness for the embedding-cache systems compared in §8.

Every system — UGache and the six baselines — is a triple of

* a *cache policy* (how entries are placed across GPUs),
* an *extraction mechanism* (how a batch is fetched), and
* a *per-iteration overhead* model (eviction bookkeeping, buffering,
  host-queue transfers — the system-specific costs §8.2 calls out).

:func:`evaluate_system` scores one system on one workload context and
returns the numbers behind Figures 10/11: extraction time, overheads, and
the end-to-end iteration time.  Extraction is priced by
:func:`~repro.core.evaluate.evaluate_placement` through the batch engine,
whose factored branch is the extraction pipeline's shared price stage
(:func:`repro.core.pipeline.price_demand`) — so a baseline's factored
number is directly comparable to the extractor's and the serving
runtime's.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.core.evaluate import HitRates, evaluate_placement, hit_rates
from repro.core.policy import Placement
from repro.hardware.platform import Platform
from repro.sim.congestion import CongestionModel
from repro.sim.engine import BatchReport
from repro.sim.mechanisms import Mechanism


class UnsupportedConfiguration(RuntimeError):
    """A system cannot run this configuration (paper: WholeGraph's ①/②)."""


@dataclass(frozen=True)
class SystemContext:
    """Everything a system needs to plan and be scored on one workload.

    Attributes:
        platform: hardware model.
        hotness: expected accesses per entry per batch per GPU.
        entry_bytes: embedding entry size.
        capacity_entries: per-GPU cache budget (entries).
        kind: ``"gnn"`` or ``"dlr"`` (some baselines are app-specific).
        batch_keys: keys one GPU extracts per iteration (with duplicates —
            what overhead models like LRU maintenance scale with).
        dense_time: per-iteration dense compute, seconds.
        sampling_time: per-iteration graph sampling, seconds (GNN only).
        graph_bytes: scaled topology volume (GNNLab's capacity bonus).
        congestion: congestion model for peer-based mechanisms.
    """

    platform: Platform
    hotness: np.ndarray
    entry_bytes: int
    capacity_entries: int
    kind: str = "gnn"
    batch_keys: float = 0.0
    dense_time: float = 0.0
    sampling_time: float = 0.0
    graph_bytes: int = 0
    #: embedding tables per model (DLR): message-based systems pay one
    #: collective round per table.
    num_tables: int = 1
    congestion: CongestionModel = field(default_factory=CongestionModel)

    @property
    def num_entries(self) -> int:
        return int(len(self.hotness))

    @property
    def num_gpus(self) -> int:
        return self.platform.num_gpus


@dataclass(frozen=True)
class SystemResult:
    """One cell of Figure 10/11: a system's score on one configuration."""

    system: str
    extraction_time: float
    overhead_time: float
    dense_time: float
    sampling_time: float
    report: BatchReport
    hits: HitRates
    placement: Placement

    @property
    def iteration_time(self) -> float:
        """End-to-end time of one iteration (Figure 10's unit for DLR)."""
        return (
            self.extraction_time
            + self.overhead_time
            + self.dense_time
            + self.sampling_time
        )

    def epoch_time(self, iterations: int) -> float:
        """End-to-end epoch time (Figure 10's unit for GNN)."""
        return self.iteration_time * iterations


class EmbCacheSystem(abc.ABC):
    """Base class for every compared system."""

    #: display name used in benchmark tables
    name: str = "base"
    #: which applications the system supports ("gnn", "dlr", or both)
    supports: tuple[str, ...] = ("gnn", "dlr")

    @abc.abstractmethod
    def plan(self, ctx: SystemContext) -> Placement:
        """Choose the cache placement for this context."""

    @abc.abstractmethod
    def mechanism(self, ctx: SystemContext) -> Mechanism:
        """Extraction mechanism the system uses."""

    def per_iteration_overhead(self, ctx: SystemContext) -> float:
        """System-specific per-iteration cost outside raw extraction."""
        return 0.0

    def capacity(self, ctx: SystemContext) -> int:
        """Per-GPU entry budget (systems may gain/lose capacity)."""
        return ctx.capacity_entries

    def check_supported(self, ctx: SystemContext) -> None:
        if ctx.kind not in self.supports:
            raise UnsupportedConfiguration(
                f"{self.name} does not support {ctx.kind} workloads"
            )


def evaluate_system(system: EmbCacheSystem, ctx: SystemContext) -> SystemResult:
    """Score one system on one workload context (a Figure 10/11 cell)."""
    system.check_supported(ctx)
    placement = system.plan(ctx)
    report = evaluate_placement(
        ctx.platform,
        placement,
        ctx.hotness,
        ctx.entry_bytes,
        mechanism=system.mechanism(ctx),
        congestion=ctx.congestion,
    )
    hits = hit_rates(ctx.platform, placement, ctx.hotness)
    return SystemResult(
        system=system.name,
        extraction_time=report.time,
        overhead_time=system.per_iteration_overhead(ctx),
        dense_time=ctx.dense_time,
        sampling_time=ctx.sampling_time,
        report=report,
        hits=hits,
        placement=placement,
    )
