"""Event-level trace of one factored extraction — Figure 8 as data.

While :mod:`repro.sim.mechanisms` answers "how long does the batch take",
this module reconstructs *when* each source group runs and which SMs it
occupies, by replaying the §5.3 schedule:

* every non-local group starts at t=0 on its dedicated cores and runs for
  ``volume / rate``;
* the local group runs at low priority on whatever cores are idle —
  initially the un-dedicated remainder, growing as non-local groups drain
  (the *padding*).

The resulting trace is exactly consistent with
:func:`repro.sim.mechanisms.factored_extraction` (tested), and can be
rendered as an ASCII Gantt chart or reduced to per-link busy intervals —
the quantities Nsight shows in the paper's Figure 13 measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.platform import HOST, Platform
from repro.sim.mechanisms import GpuDemand, core_dedication


@dataclass(frozen=True)
class GroupEvent:
    """One source group's execution interval."""

    source: int
    cores: int
    start: float
    finish: float
    volume: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass(frozen=True)
class LocalSegment:
    """A constant-core-count span of the low-priority local extraction."""

    start: float
    finish: float
    cores: float


@dataclass(frozen=True)
class ExtractionTrace:
    """Full schedule of one GPU's factored batch extraction."""

    dst: int
    total_cores: int
    groups: tuple[GroupEvent, ...]
    local_segments: tuple[LocalSegment, ...]
    local_volume: float

    @property
    def makespan(self) -> float:
        ends = [g.finish for g in self.groups]
        ends += [s.finish for s in self.local_segments]
        return max(ends, default=0.0)

    def busy_interval(self, source: int) -> tuple[float, float] | None:
        """When the link to ``source`` is moving bytes (None if unused)."""
        for g in self.groups:
            if g.source == source:
                return (g.start, g.finish)
        return None

    def core_utilization(self) -> float:
        """Fraction of SM-time the batch keeps busy (stall-free = high)."""
        span = self.makespan
        if span <= 0:
            return 0.0
        busy = sum(g.cores * g.duration for g in self.groups)
        busy += sum(s.cores * (s.finish - s.start) for s in self.local_segments)
        return min(1.0, busy / (self.total_cores * span))

    def gantt(self, width: int = 60) -> str:
        """ASCII Gantt chart: one row per group, time left→right."""
        span = self.makespan
        if span <= 0:
            return "(empty trace)"
        lines = [f"GPU {self.dst} factored extraction ({span * 1e3:.3f} ms)"]
        rows: list[tuple[str, float, float]] = []
        for g in self.groups:
            if g.source == HOST:
                label = "host"
            elif g.source < 0:  # a deeper backing tier
                label = f"T{-g.source - 1}"
            else:
                label = f"G{g.source}"
            rows.append((f"{label:>5} ({g.cores:3d} SMs)", g.start, g.finish))
        for s in self.local_segments:
            rows.append((f"local ({s.cores:3.0f} SMs)", s.start, s.finish))
        for label, start, finish in rows:
            begin = int(round(start / span * width))
            end = max(begin + 1, int(round(finish / span * width)))
            bar = " " * begin + "█" * (end - begin)
            lines.append(f"  {label:16s} |{bar:<{width}}|")
        return "\n".join(lines)


def trace_factored(
    platform: Platform, demand: GpuDemand, local_padding: bool = True
) -> ExtractionTrace:
    """Replay the §5.3 schedule for one GPU's demand.

    With padding, local extraction consumes idle SM capacity from t=0,
    stepping up each time a non-local group drains; without it, local
    waits for every non-local group (the ablation).
    """
    gpu = platform.gpu
    dedication = core_dedication(platform, demand.dst, list(demand.volumes))
    groups: list[GroupEvent] = []
    for src, vol in demand.volumes.items():
        if src == demand.dst or vol <= 0:
            continue
        cores = dedication.get(src, 1)
        rate = min(cores * gpu.per_core_bandwidth, platform.bandwidth(demand.dst, src))
        busy = min(cores, platform.tolerance(demand.dst, src))
        groups.append(
            GroupEvent(
                source=src, cores=busy, start=0.0, finish=vol / rate, volume=vol
            )
        )

    local_volume = demand.volume(demand.dst)
    segments: list[LocalSegment] = []
    if local_volume > 0:
        work = local_volume / gpu.per_core_bandwidth  # SM-seconds needed
        if local_padding:
            segments = _fill_idle_capacity(work, groups, gpu.num_cores)
        else:
            start = max((g.finish for g in groups), default=0.0)
            duration = local_volume / gpu.local_bandwidth
            segments = [
                LocalSegment(start=start, finish=start + duration, cores=gpu.num_cores)
            ]
    return ExtractionTrace(
        dst=demand.dst,
        total_cores=gpu.num_cores,
        groups=tuple(groups),
        local_segments=tuple(segments),
        local_volume=local_volume,
    )


def _fill_idle_capacity(
    work: float, groups: list[GroupEvent], total_cores: int
) -> list[LocalSegment]:
    """Consume ``work`` SM-seconds on the cores the groups leave idle."""
    boundaries = sorted({0.0, *(g.finish for g in groups)})
    segments: list[LocalSegment] = []
    remaining = work
    for i, start in enumerate(boundaries):
        if remaining <= 1e-18:
            break
        busy = sum(g.cores for g in groups if g.finish > start + 1e-18)
        idle = max(total_cores - busy, 0)
        end = boundaries[i + 1] if i + 1 < len(boundaries) else float("inf")
        if idle <= 0:
            continue
        capacity = idle * (end - start)
        if capacity >= remaining:
            finish = start + remaining / idle
            segments.append(LocalSegment(start=start, finish=finish, cores=idle))
            remaining = 0.0
        else:
            segments.append(LocalSegment(start=start, finish=end, cores=idle))
            remaining -= capacity
    return segments


def trace_batch(
    platform: Platform, demands: list[GpuDemand], local_padding: bool = True
) -> list[ExtractionTrace]:
    """Traces for a full data-parallel batch (one per GPU)."""
    return [trace_factored(platform, d, local_padding) for d in demands]
