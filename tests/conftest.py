"""Shared fixtures: small platforms, tables and hotness distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware import server_a, server_b, server_c, single_gpu
from repro.utils.stats import zipf_pmf


@pytest.fixture
def platform_a():
    """4×V100 hard-wired (Server A)."""
    return server_a()


@pytest.fixture
def platform_b():
    """8×V100 DGX-1 with unconnected pairs (Server B)."""
    return server_b()


@pytest.fixture
def platform_c():
    """8×A100 behind NVSwitch (Server C)."""
    return server_c()


@pytest.fixture
def platform_1gpu():
    return single_gpu()


@pytest.fixture(params=["server-a", "server-b", "server-c"])
def any_platform(request):
    """Parametrized over all three paper testbeds."""
    return {"server-a": server_a, "server-b": server_b, "server-c": server_c}[
        request.param
    ]()


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def small_table(rng):
    """A 2000×8 float32 embedding table."""
    return rng.standard_normal((2000, 8)).astype(np.float32)


@pytest.fixture
def skewed_hotness():
    """Zipf(1.2) hotness over 2000 entries, ~1000 accesses per batch."""
    return zipf_pmf(2000, 1.2) * 1000.0


@pytest.fixture
def uniform_hotness():
    return np.full(2000, 0.5)
