"""Figure 11: embedding extraction time per iteration, all systems."""

from repro.bench.experiments import fig11_extraction_time
from repro.bench.harness import speedup_summary


def bench_fig11_extraction_time(run_experiment):
    result = run_experiment(fig11_extraction_time)
    for base in ("GNNLab", "RepU", "PartU"):
        summary = speedup_summary(result.rows, base, "UGache")
        assert summary["count"] > 0
        assert summary["geomean"] > 1.0
