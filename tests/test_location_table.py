"""The §4 location hashtable: packing, probing, deletion, batch lookup."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.location_table import (
    LocationTable,
    pack_location,
    unpack_location,
)
from repro.hardware.platform import HOST


class TestPacking:
    def test_roundtrip(self):
        for source, offset in [(0, 0), (7, 123456), (HOST, 5), (255, 2**40)]:
            assert unpack_location(pack_location(source, offset)) == (source, offset)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            pack_location(-2, 0)
        with pytest.raises(ValueError):
            pack_location(0, 2**48)
        with pytest.raises(ValueError):
            pack_location(0, -1)


class TestInsertGet:
    def test_basic(self):
        table = LocationTable(10)
        table.insert(42, 3, 7)
        assert table.get(42) == (3, 7)
        assert table.get(43) is None
        assert len(table) == 1

    def test_overwrite(self):
        table = LocationTable(10)
        table.insert(42, 3, 7)
        table.insert(42, 5, 9)
        assert table.get(42) == (5, 9)
        assert len(table) == 1

    def test_negative_key_rejected(self):
        with pytest.raises(ValueError):
            LocationTable(4).insert(-1, 0, 0)

    def test_growth_preserves_entries(self):
        table = LocationTable(4)
        for key in range(500):
            table.insert(key, key % 8, key * 2)
        assert len(table) == 500
        for key in range(500):
            assert table.get(key) == (key % 8, key * 2)

    def test_load_factor_bounded(self):
        table = LocationTable(4, max_load=0.7)
        for key in range(1000):
            table.insert(key, 0, key)
        assert table.load_factor <= 0.7


class TestRemove:
    def test_remove_present(self):
        table = LocationTable(10)
        table.insert(1, 0, 0)
        assert table.remove(1)
        assert table.get(1) is None
        assert len(table) == 0

    def test_remove_absent(self):
        assert not LocationTable(10).remove(5)

    def test_backward_shift_keeps_cluster_reachable(self):
        # Insert many colliding keys, remove from the middle, and verify
        # the rest stay findable (tombstone-free deletion).
        table = LocationTable(64)
        keys = list(range(0, 4096, 64))
        for key in keys:
            table.insert(key, 1, key)
        for key in keys[:: 2]:
            assert table.remove(key)
        for key in keys[1:: 2]:
            assert table.get(key) == (1, key)

    def test_probe_lengths_stay_bounded_after_churn(self):
        table = LocationTable(256)
        rng = np.random.default_rng(0)
        live: set[int] = set()
        for _ in range(5000):
            key = int(rng.integers(0, 2000))
            if key in live:
                table.remove(key)
                live.discard(key)
            else:
                table.insert(key, 2, key)
                live.add(key)
        assert len(table) == len(live)
        assert table.max_probe_length() < 64


class TestBatchLookup:
    def test_hits_and_misses(self):
        table = LocationTable(10)
        table.insert(5, 2, 100)
        sources, offsets = table.lookup_batch(np.array([5, 6]))
        assert sources[0] == 2 and offsets[0] == 100
        assert sources[1] == HOST and offsets[1] == 6  # miss ⇒ host-by-key

    def test_from_source_map(self):
        sources = np.array([0, HOST, 1, HOST], dtype=np.int16)
        offsets = np.array([10, 0, 20, 0])
        table = LocationTable.from_source_map(sources, offsets)
        assert len(table) == 2
        assert table.get(0) == (0, 10)
        assert table.get(2) == (1, 20)
        assert table.get(1) is None


class TestHypothesis:
    @given(
        entries=st.dictionaries(
            keys=st.integers(0, 10_000),
            values=st.tuples(st.integers(-1, 15), st.integers(0, 2**30)),
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_dict_semantics(self, entries):
        table = LocationTable(8)
        for key, (source, offset) in entries.items():
            table.insert(key, source, offset)
        assert len(table) == len(entries)
        for key, value in entries.items():
            assert table.get(key) == value

    @given(
        keys=st.lists(st.integers(0, 500), min_size=1, max_size=300),
    )
    @settings(max_examples=50, deadline=None)
    def test_insert_remove_interleaved(self, keys):
        table = LocationTable(8)
        reference: dict[int, tuple[int, int]] = {}
        for i, key in enumerate(keys):
            if key in reference:
                table.remove(key)
                del reference[key]
            else:
                table.insert(key, i % 4, i)
                reference[key] = (i % 4, i)
        assert len(table) == len(reference)
        for key, value in reference.items():
            assert table.get(key) == value


class TestProbeBounds:
    """Probe loops are capped: a full/corrupt table raises, never hangs."""

    @staticmethod
    def _filled_to_capacity() -> LocationTable:
        table = LocationTable(4)
        # Bypass the load-factor guard (as a corrupting writer would) so
        # every slot ends up occupied.
        table._max_load = 2.0
        key = 0
        while len(table) < table.capacity:
            table.insert(key, 0, key)
            key += 1
        return table

    def test_insert_into_full_table_raises(self):
        from repro.core.location_table import ProbeLimitError

        table = self._filled_to_capacity()
        with pytest.raises(ProbeLimitError, match="full or corrupt"):
            table.insert(10_000, 0, 0)

    def test_get_absent_key_in_full_table_raises(self):
        from repro.core.location_table import ProbeLimitError

        table = self._filled_to_capacity()
        with pytest.raises(ProbeLimitError):
            table.get(10_000)

    def test_remove_absent_key_in_full_table_raises(self):
        from repro.core.location_table import ProbeLimitError

        table = self._filled_to_capacity()
        with pytest.raises(ProbeLimitError):
            table.remove(10_000)

    def test_present_keys_still_resolve_when_full(self):
        table = self._filled_to_capacity()
        for key in range(table.capacity):
            assert table.get(key) == (0, key)

    def test_remove_in_nearly_full_table_still_works(self):
        # One empty slot is enough for backward-shift to terminate.
        table = LocationTable(4)
        table._max_load = 2.0
        for key in range(table.capacity - 1):
            table.insert(key, 0, key)
        assert table.remove(0) is True
        assert table.get(0) is None
        for key in range(1, table.capacity - 1):
            assert table.get(key) == (0, key)


class TestCorruptEntries:
    """Out-of-range ``<gpu, offset>`` slots raise typed errors, never garbage."""

    @staticmethod
    def _bounded_table() -> LocationTable:
        table = LocationTable(16, num_sources=4, max_offset=100)
        table.insert(1, 2, 50)
        table.insert(2, 3, 99)
        return table

    def test_valid_entries_pass_the_bounds_check(self):
        table = self._bounded_table()
        assert table.get(1) == (2, 50)
        assert table.get(2) == (3, 99)

    def test_out_of_range_source_raises(self):
        from repro.core.location_table import CorruptEntryError

        table = self._bounded_table()
        table.corrupt_slot(1, 9, 50)
        with pytest.raises(CorruptEntryError) as info:
            table.get(1)
        assert info.value.key == 1
        assert info.value.source == 9
        assert info.value.offset == 50

    def test_out_of_range_offset_raises(self):
        from repro.core.location_table import CorruptEntryError

        table = self._bounded_table()
        table.corrupt_slot(2, 3, 5000)
        with pytest.raises(CorruptEntryError):
            table.get(2)

    def test_host_sentinel_is_never_corrupt(self):
        table = self._bounded_table()
        table.corrupt_slot(1, HOST, 0)
        assert table.get(1) == (HOST, 0)

    def test_corrupt_absent_key_raises_keyerror(self):
        with pytest.raises(KeyError):
            self._bounded_table().corrupt_slot(999, 0, 0)

    def test_unbounded_table_does_not_validate(self):
        table = LocationTable(16)
        table.insert(1, 2, 50)
        table.corrupt_slot(1, 200, 2**40)
        assert table.get(1) == (200, 2**40)

    def test_lookup_batch_raise_mode(self):
        from repro.core.location_table import CorruptEntryError

        table = self._bounded_table()
        table.corrupt_slot(1, 9, 50)
        with pytest.raises(CorruptEntryError):
            table.lookup_batch(np.array([1, 2]))

    def test_lookup_batch_host_mode_reroutes(self):
        table = self._bounded_table()
        table.corrupt_slot(1, 9, 50)
        sources, offsets = table.lookup_batch(np.array([1, 2]), on_corrupt="host")
        assert sources[0] == HOST and offsets[0] == 1  # host is keyed by id
        assert sources[1] == 3 and offsets[1] == 99  # untouched entry intact

    def test_lookup_batch_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            self._bounded_table().lookup_batch(np.array([1]), on_corrupt="ignore")

    def test_from_source_map_arms_bounds(self):
        from repro.core.location_table import CorruptEntryError

        sources = np.array([0, HOST, 1], dtype=np.int16)
        offsets = np.array([10, 0, 20])
        table = LocationTable.from_source_map(
            sources, offsets, num_sources=2, max_offset=64
        )
        table.corrupt_slot(0, 7, 10)
        with pytest.raises(CorruptEntryError):
            table.get(0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LocationTable(8, num_sources=0)
        with pytest.raises(ValueError):
            LocationTable(8, max_offset=-1)
