"""Graph persistence: load/save CSR graphs, ingest edge lists.

Real deployments bring their own graphs; these helpers cover the two
common interchange forms:

* ``.npz`` round-trips of :class:`~repro.gnn.graph.CSRGraph` (compact,
  exact);
* whitespace-separated edge-list text files (``src dst`` per line, ``#``
  comments), the OGB/KONECT distribution format.
"""

from __future__ import annotations

import os

import numpy as np

from repro.gnn.graph import CSRGraph


def save_graph(path: str | os.PathLike, graph: CSRGraph) -> None:
    """Write a graph as a compressed ``.npz``."""
    np.savez_compressed(path, indptr=graph.indptr, indices=graph.indices)


def load_graph(path: str | os.PathLike) -> CSRGraph:
    """Load a graph written by :func:`save_graph`."""
    with np.load(path) as data:
        if "indptr" not in data or "indices" not in data:
            raise ValueError(f"{path}: not a saved CSRGraph (missing arrays)")
        return CSRGraph(indptr=data["indptr"], indices=data["indices"])


def read_edge_list(
    path: str | os.PathLike,
    num_nodes: int | None = None,
    symmetric: bool = True,
) -> CSRGraph:
    """Parse a ``src dst`` text edge list into a CSR graph.

    Args:
        path: text file; ``#``-prefixed lines are comments.
        num_nodes: id-space size; inferred as ``max id + 1`` when omitted.
        symmetric: insert each edge in both directions (OGB homogeneous
            preprocessing).
    """
    src_list: list[int] = []
    dst_list: list[int] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{lineno}: expected 'src dst'")
            src_list.append(int(parts[0]))
            dst_list.append(int(parts[1]))
    src = np.asarray(src_list, dtype=np.int64)
    dst = np.asarray(dst_list, dtype=np.int64)
    if num_nodes is None:
        num_nodes = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)
    if symmetric and src.size:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    return CSRGraph.from_edges(num_nodes, src, dst)


def write_edge_list(path: str | os.PathLike, graph: CSRGraph) -> None:
    """Write a graph's edges as ``src dst`` text (one direction per stored
    edge; symmetric graphs emit both directions, matching their CSR)."""
    with open(path, "w") as fh:
        fh.write("# src dst\n")
        for u in range(graph.num_nodes):
            for v in graph.neighbors(u):
                fh.write(f"{u} {v}\n")
