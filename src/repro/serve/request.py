"""Serving request/response types and the virtual clock.

The serving runtime runs entirely in *simulated* time: the clock is a
plain float the soak harness advances by the priced extraction times, so
a 30-second soak finishes in well under a wall-clock second and every run
is bit-reproducible.  A real deployment would pass ``time.monotonic``
readings instead; nothing in the runtime cares which it gets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

__all__ = ["Request", "RequestStatus", "Response", "SimClock"]


class SimClock:
    """A monotonic virtual clock the serving loop advances explicitly.

    Calling the instance returns the current time, so it can stand in for
    ``time.monotonic`` anywhere a clock callable is expected (e.g.
    :class:`~repro.utils.retry.Deadline`).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def __call__(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds (never backwards)."""
        if dt < 0:
            raise ValueError("the clock only moves forward")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Advance to absolute time ``t`` if it is in the future."""
        if t > self._now:
            self._now = t
        return self._now


class RequestStatus(str, Enum):
    """Terminal state of one serving request."""

    #: served within its deadline — the only state that counts as goodput.
    OK = "ok"
    #: dropped at admission by SLO-aware load shedding or shed-oldest.
    SHED = "shed"
    #: refused at admission because the queue was full (reject policy).
    REJECTED = "rejected"
    #: served (or dropped) after its deadline had already passed.
    EXPIRED = "expired"
    #: an unrecoverable serving error (should never happen — degraded
    #: mode reroutes instead — but the status exists so nothing is silent).
    FAILED = "failed"


@dataclass(frozen=True)
class Request:
    """One embedding-gather request against a single destination GPU.

    ``deadline`` is absolute (same timebase as the clock); ``math.inf``
    means best-effort.  Keys are the entry ids to gather.
    """

    request_id: int
    gpu: int
    keys: np.ndarray
    arrival: float
    deadline: float = math.inf

    def remaining(self, now: float) -> float:
        """Seconds of deadline budget left at ``now`` (can be negative)."""
        return self.deadline - now

    def expired(self, now: float) -> bool:
        return now >= self.deadline


@dataclass
class Response:
    """The outcome of one request, with full serving provenance."""

    request: Request
    status: RequestStatus
    completed_at: float = 0.0
    #: simulated seconds the extraction itself took (queueing excluded).
    service_time: float = 0.0
    #: a host-DRAM hedge was issued because the deadline was close.
    hedged: bool = False
    #: the hedge finished first and its result was taken.
    hedge_won: bool = False
    #: keys the degraded-mode router moved off their mapped source.
    rerouted_keys: int = 0
    #: how many requests shared this request's extraction (1 = served
    #: alone; >1 = coalesced into a micro-batch of that size).
    coalesced: int = 1
    #: host-resolved keys of this request's plan that were served from
    #: the lookahead prefetcher's staging buffer (0 without a prefetcher).
    prefetch_hits: int = 0
    #: gathered values (None for requests dropped before execution).
    values: np.ndarray | None = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.status is RequestStatus.OK

    @property
    def latency(self) -> float:
        """Arrival-to-completion seconds (0 for admission-time drops)."""
        if self.completed_at <= self.request.arrival:
            return 0.0
        return self.completed_at - self.request.arrival
