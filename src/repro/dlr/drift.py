"""Hotness drift: time-varying DLR traces for the Refresher (§7.2, §8.6).

Production recommendation traffic shifts slowly — "hot entries in different
daily traces are highly alike" (§2) — so the paper refreshes the static
cache periodically instead of paying per-access eviction.  This module
generates exactly that kind of workload: a sequence of *days*, each a
:class:`~repro.dlr.workload.DlrWorkload` whose hot set is a controlled
perturbation of the previous day's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.dlr.workload import DlrWorkload
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class DriftingTrace:
    """A multi-day DLR trace with bounded day-over-day hot-set churn.

    Attributes:
        base: day-0 workload (defines tables, skew, batch size).
        churn: fraction of each table's popularity ranking that is
            re-drawn between consecutive days (0 = static, 1 = fully
            re-shuffled).  Real daily traces sit near 0.05-0.2.
        num_days: length of the trace.
    """

    base: DlrWorkload
    churn: float = 0.1
    num_days: int = 7
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.churn <= 1.0:
            raise ValueError("churn must be in [0, 1]")
        if self.num_days < 1:
            raise ValueError("need at least one day")

    def days(self) -> Iterator[DlrWorkload]:
        """Yield one workload per day, drifting from the base."""
        rng = make_rng(self.seed)
        perms = [rng.permutation(size) for size in self.base.table_sizes]
        for _day in range(self.num_days):
            yield self._workload_for(perms)
            perms = [self._churn_permutation(p, rng) for p in perms]

    def _churn_permutation(
        self, perm: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Re-draw a ``churn`` fraction of a table's popularity ranking.

        Swaps a random subset of ranking positions, so most of the hot
        set persists while some entries heat up / cool down.
        """
        perm = perm.copy()
        n = len(perm)
        moved = int(self.churn * n)
        if moved >= 2:
            positions = rng.choice(n, size=moved, replace=False)
            perm[positions] = perm[rng.permutation(positions)]
        return perm

    def _workload_for(self, perms: list[np.ndarray]) -> DlrWorkload:
        return DlrWorkload(
            table_sizes=self.base.table_sizes,
            alpha=self.base.alpha,
            batch_size=self.base.batch_size,
            num_gpus=self.base.num_gpus,
            seed=self.base.seed,
            permutations=tuple(p.copy() for p in perms),
        )


def hot_set_overlap(day_a: DlrWorkload, day_b: DlrWorkload, top_frac: float = 0.01) -> float:
    """Jaccard overlap of two days' hottest entries (the §2 stability claim)."""
    if not 0 < top_frac <= 1:
        raise ValueError("top_frac must be in (0, 1]")
    hot_a = day_a.hotness()
    hot_b = day_b.hotness()
    k = max(1, int(top_frac * len(hot_a)))
    top_a = set(np.argsort(-hot_a)[:k].tolist())
    top_b = set(np.argsort(-hot_b)[:k].tolist())
    union = top_a | top_b
    if not union:
        return 0.0
    return len(top_a & top_b) / len(union)
