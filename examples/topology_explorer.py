"""Explore the modelled multi-GPU platforms (Figure 3 + Figure 6).

Prints, for each of the paper's three testbeds, the interconnect layout,
per-pair bandwidths, link tolerances (how many SMs saturate each path), and
the Extractor's resulting core-dedication split (§5.3) — then does the same
for a user-defined custom platform to show the model is not preset-bound.

Run:  python examples/topology_explorer.py
"""

from repro.hardware import (
    GPUSpec,
    HOST,
    Platform,
    hardwired_fully_connected,
    server_a,
    server_b,
    server_c,
    tolerance_curves,
)
from repro.sim import core_dedication
from repro.utils.units import GIB, gbps


def describe(platform: Platform) -> None:
    gpu = platform.gpu
    print(f"\n=== {platform.name}: {platform.num_gpus}x {gpu.name} "
          f"({platform.topology.kind.value}) ===")
    print(f"  per-GPU: {gpu.num_cores} SMs, local {gpu.local_bandwidth/1e9:.0f} GB/s, "
          f"outbound {gpu.outbound_bandwidth/1e9:.0f} GB/s; "
          f"PCIe {platform.pcie_bandwidth/1e9:.0f} GB/s")

    print("  pair bandwidth (GB/s) from GPU 0:")
    for j in platform.gpu_ids:
        if j == 0:
            continue
        bw = platform.bandwidth(0, j)
        label = f"{bw/1e9:.1f}" if bw else "unconnected -> host fallback"
        print(f"    G0 <- G{j}: {label}")

    print("  Figure-6 curves (plateau GB/s @ saturating SMs):")
    for curve in tolerance_curves(platform, dst=0):
        print(f"    {curve.source_label:22s} {curve.plateau_bandwidth/1e9:6.1f} GB/s "
              f"@ {curve.saturation_cores:3d}/{platform.gpu.num_cores} SMs")

    dedication = core_dedication(platform, 0, platform.sources_for(0))
    pretty = {("host" if s == HOST else f"G{s}"): c for s, c in dedication.items()}
    print(f"  FEM core dedication on GPU 0 (§5.3): {pretty} "
          f"(remaining SMs pad local extraction)")

    cliques = platform.topology.cliques()
    if len(cliques) > 1:
        print(f"  NVLink cliques (Quiver's split): {cliques}")


def custom_platform() -> Platform:
    """A hypothetical 6-GPU box with 40 GB GPUs and 5 lanes per pair."""
    gpu = GPUSpec(
        name="Hypo-40GB",
        memory_bytes=40 * GIB,
        num_cores=96,
        local_bandwidth=gbps(500),
        nvlink_lanes=10,
    )
    return Platform(
        name="custom-6gpu",
        gpu=gpu,
        topology=hardwired_fully_connected(6, lanes_per_gpu=10),
        pcie_bandwidth=gbps(20),
    )


def main() -> None:
    for platform in (server_a(), server_b(), server_c(), custom_platform()):
        describe(platform)


if __name__ == "__main__":
    main()
