"""UGache reproduction: a unified multi-GPU cache for embedding-based DL.

Reimplements the system of *"UGACHE: A Unified GPU Cache for Embedding-based
Deep Learning"* (SOSP 2023) in pure Python over a simulated multi-GPU
substrate.  See ``DESIGN.md`` for the substitution rationale and
``EXPERIMENTS.md`` for the reproduced tables and figures.

Quick start::

    import numpy as np
    from repro import hardware, UGacheEmbeddingLayer, EmbeddingLayerConfig

    platform = hardware.server_c()
    table = np.random.default_rng(0).standard_normal((100_000, 128)).astype("float32")
    hotness = np.random.default_rng(1).zipf(1.4, 100_000)  # any access-frequency estimate
    layer = UGacheEmbeddingLayer(
        platform, table, hotness, EmbeddingLayerConfig(cache_ratio=0.1)
    )
    values = layer.lookup(gpu=0, keys=np.array([3, 1, 4]))
"""

from repro.core import (
    EmbeddingLayerConfig,
    MultiGpuEmbeddingCache,
    Placement,
    SolvedPolicy,
    SolverConfig,
    UGacheEmbeddingLayer,
    solve_policy,
)
from repro.hardware import HOST, Platform, server_a, server_b, server_c
from repro.obs import MetricsRegistry, get_registry, use_registry
from repro.sim import BatchReport, GpuDemand, Mechanism, simulate_batch

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "EmbeddingLayerConfig",
    "MultiGpuEmbeddingCache",
    "Placement",
    "SolvedPolicy",
    "SolverConfig",
    "UGacheEmbeddingLayer",
    "solve_policy",
    "HOST",
    "Platform",
    "server_a",
    "server_b",
    "server_c",
    "BatchReport",
    "GpuDemand",
    "Mechanism",
    "simulate_batch",
    "MetricsRegistry",
    "get_registry",
    "use_registry",
]
