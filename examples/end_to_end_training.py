"""Fully end-to-end GNN training: cache-extracted features → real model.

Everything in one loop, nothing mocked: a power-law graph, a UGache
embedding layer across the modelled 8×A100 server, fanout-tree sampling,
and an actual numpy GraphSAGE (exact forward/backward) learning a
feature-derived node-classification task.  Training loss falls while every
feature vector is served by the multi-GPU cache — and the simulated
extraction time of each iteration is reported alongside.

Run:  python examples/end_to_end_training.py
"""

import numpy as np

from repro import EmbeddingLayerConfig, UGacheEmbeddingLayer, server_c
from repro.gnn import GraphSageModel, power_law_graph, sample_tree

NUM_NODES, NUM_EDGES = 20_000, 300_000
DIM, HIDDEN, CLASSES = 16, 32, 4
FANOUTS = (5, 5)
BATCH, STEPS = 256, 30


def main() -> None:
    rng = np.random.default_rng(0)
    platform = server_c()

    print("building graph, embeddings, and a learnable labelling...")
    graph = power_law_graph(NUM_NODES, NUM_EDGES, degree_alpha=1.1, seed=0)
    table = rng.standard_normal((NUM_NODES, DIM)).astype(np.float32)
    true_w = rng.standard_normal((DIM, CLASSES))
    labels = (table @ true_w).argmax(axis=1)  # ground truth from features

    # Hotness from degree (PaGraph-style §6.1) — no profiling epoch needed.
    degrees = graph.degrees().astype(np.float64)
    hotness = degrees / degrees.sum() * (BATCH * 31)

    layer = UGacheEmbeddingLayer(
        platform, table, hotness, EmbeddingLayerConfig(cache_ratio=0.10)
    )
    hits = layer.hit_rates()
    print(f"cache ready: local {hits.local:.1%} / remote {hits.remote:.1%} / "
          f"host {hits.host:.1%}")

    model = GraphSageModel(DIM, HIDDEN, num_levels=len(FANOUTS),
                           num_classes=CLASSES, seed=1)
    print(f"\ntraining GraphSAGE for {STEPS} steps:")
    extraction_total = 0.0
    for step in range(STEPS):
        seeds = rng.choice(NUM_NODES, size=BATCH, replace=False)
        tree = sample_tree(graph, seeds, FANOUTS, seed=1000 + step)

        # Extract every tree position's embedding through the cache —
        # duplicates included, as the paper's extract() does.
        keys = tree.all_keys()
        unique, inverse = np.unique(keys, return_inverse=True)
        result = layer.cache.lookup(0, unique)
        features = tree.features_by_depth(unique, result.values.astype(np.float64))
        report = layer.extract(
            [keys if g == 0 else keys for g in platform.gpu_ids]
        )[1]
        extraction_total += report.time

        loss, grads = model.loss_and_grads(tree, features, labels[seeds])
        model.sgd_step(grads, lr=0.5)
        if step % 5 == 0 or step == STEPS - 1:
            acc = (model.predict(tree, features) == labels[seeds]).mean()
            print(f"  step {step:3d}: loss {loss:.3f}  batch acc {acc:.2%}  "
                  f"extraction {report.time * 1e3:.3f} ms (simulated)")

    print(f"\ntotal simulated extraction time: {extraction_total * 1e3:.2f} ms "
          f"across {STEPS} iterations")
    print("the embedding table never changed (read-only, §2); "
          "only dense weights trained.")


if __name__ == "__main__":
    main()
