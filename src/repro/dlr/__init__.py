"""DLR substrate: multi-table inference workloads and model cost models."""

from repro.dlr.models import DCN, DLRM, DlrModelSpec, dense_time_per_iteration, model_by_name
from repro.dlr.drift import DriftingTrace, hot_set_overlap
from repro.dlr.nn import DcnNet, DlrmNet, serve_batch
from repro.dlr.workload import DlrWorkload

__all__ = [
    "DriftingTrace",
    "hot_set_overlap",
    "DcnNet",
    "DlrmNet",
    "serve_batch",
    "DCN",
    "DLRM",
    "DlrModelSpec",
    "dense_time_per_iteration",
    "model_by_name",
    "DlrWorkload",
]
