"""Deterministic RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import make_rng, spawn_rngs


def test_same_seed_same_stream():
    a = make_rng(42).integers(0, 1000, 10)
    b = make_rng(42).integers(0, 1000, 10)
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    a = make_rng(1).integers(0, 1_000_000, 20)
    b = make_rng(2).integers(0, 1_000_000, 20)
    assert not np.array_equal(a, b)


def test_generator_passthrough():
    gen = np.random.default_rng(7)
    assert make_rng(gen) is gen


def test_spawn_count():
    assert len(spawn_rngs(0, 5)) == 5


def test_spawn_children_independent():
    kids = spawn_rngs(0, 2)
    a = kids[0].integers(0, 1_000_000, 20)
    b = kids[1].integers(0, 1_000_000, 20)
    assert not np.array_equal(a, b)


def test_spawn_deterministic():
    a = spawn_rngs(3, 2)[1].integers(0, 1000, 5)
    b = spawn_rngs(3, 2)[1].integers(0, 1000, 5)
    assert np.array_equal(a, b)


def test_spawn_rejects_negative():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)
