"""Figure 15: per-source extraction time per policy vs cache ratio."""

from repro.bench.experiments import fig15_time_split


def bench_fig15_time_split(run_experiment):
    result = run_experiment(fig15_time_split)
    rows = {(r["dataset"], r["cache_ratio_pct"], r["policy"]): r for r in result.rows}
    # PA at 8%: trading remote for local time wins ~2× over partition
    # (§8.5 reports 2.0×).
    assert (
        rows[("pa", 8.0, "UGache")]["total_ms"]
        < rows[("pa", 8.0, "PartU")]["total_ms"] / 1.5
    )
    # Replication stays host-bound on CF at every ratio.
    for ratio in (2.0, 8.0, 12.0):
        row = rows[("cf", ratio, "RepU")]
        assert row["host_ms"] > row["local_ms"]
