"""Golden regression: new layers leave the layers beneath untouched.

``tests/golden/soak_single_box.json`` pins two CI-sized single-box soak
runs (``steady`` and ``dgx_a100_partial_failure``) generated *before* the
cluster tier existed.  A ``--nodes 1 --replication 1`` soak — the
defaults — must keep producing byte-for-byte the same report.

``tests/golden/soak_cluster.json`` pins two CI-sized 3-node cluster soaks
(``steady`` and ``node-kill``) generated *before* the repair layer
existed.  A repair-off cluster soak must keep reproducing them exactly.

In both fixtures only the keys present in the pin are compared, so later
layers may add report fields but never change a pinned one.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

pytestmark = [pytest.mark.serve, pytest.mark.cluster]


def _load_generator(name: str = "generate_soak_golden"):
    spec = importlib.util.spec_from_file_location(
        name, GOLDEN_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads((GOLDEN_DIR / "soak_single_box.json").read_text())


@pytest.fixture(scope="module")
def replayed() -> dict:
    # Round-trip through JSON so float representation matches the fixture.
    return json.loads(json.dumps(_load_generator().build(), sort_keys=True))


@pytest.mark.parametrize("scenario", ["steady", "dgx_a100_partial_failure"])
def test_single_box_soak_is_byte_identical(golden, replayed, scenario):
    pinned = golden["scenarios"][scenario]
    got = replayed["scenarios"][scenario]
    diverged = {
        key: {"pinned": pinned[key], "got": got.get(key, "<missing>")}
        for key in pinned
        if got.get(key, "<missing>") != pinned[key]
    }
    assert not diverged, (
        f"single-box {scenario} soak diverged from the pre-cluster pin: "
        f"{diverged}"
    )


def test_report_schema_is_versioned(replayed):
    for doc in replayed["scenarios"].values():
        assert doc["schema"] == "repro.soak/v1"


def test_cluster_fields_are_additive_and_inert_single_box(replayed, golden):
    """New report fields exist but sit at their single-box identities."""
    for scenario, doc in replayed["scenarios"].items():
        assert set(doc) >= set(golden["scenarios"][scenario])
        assert doc["nodes"] == 1 and doc["replication"] == 1
        # Tier fields are additive too: inert on single-tier platforms.
        assert doc["tiers"] == "" and doc["tier_shares"] == {}
        assert doc["tier_demotions"] == 0 and doc["tier_moved_bytes"] == 0
        assert doc["tenants"] == 1
        assert doc["failovers"] == 0
        assert doc["replica_read_fraction"] == 0.0
        assert doc["host_fallback_keys"] == 0
        assert doc["partial_responses"] == 0
        assert doc["rpc_retries"] == 0 and doc["rpc_timeouts"] == 0
        assert doc["failover_goodput_ratio"] == 1.0
        assert doc["rebalance_bytes"] == 0
        assert doc["node_requests"] == {}


@pytest.fixture(scope="module")
def cluster_golden() -> dict:
    return json.loads((GOLDEN_DIR / "soak_cluster.json").read_text())


@pytest.fixture(scope="module")
def cluster_replayed() -> dict:
    module = _load_generator("generate_cluster_golden")
    return json.loads(json.dumps(module.build(), sort_keys=True))


@pytest.mark.parametrize("scenario", ["steady", "node-kill"])
def test_repair_off_cluster_soak_is_byte_identical(
    cluster_golden, cluster_replayed, scenario
):
    """The repair layer, switched off, reproduces the PR-7 cluster pin."""
    pinned = cluster_golden["scenarios"][scenario]
    got = cluster_replayed["scenarios"][scenario]
    diverged = {
        key: {"pinned": pinned[key], "got": got.get(key, "<missing>")}
        for key in pinned
        if got.get(key, "<missing>") != pinned[key]
    }
    assert not diverged, (
        f"repair-off cluster {scenario} soak diverged from the pre-repair "
        f"pin: {diverged}"
    )


@pytest.mark.repair
def test_repair_fields_are_additive_and_inert_repair_off(
    cluster_replayed, cluster_golden
):
    """Repair report fields exist but sit at their repair-off identities."""
    for scenario, doc in cluster_replayed["scenarios"].items():
        assert set(doc) >= set(cluster_golden["scenarios"][scenario])
        assert doc["repair_enabled"] is False
        assert doc["restage_mode"] == ""
        assert doc["recovery_goodput_ratio"] == 1.0
        assert doc["recovery_requests"] == 0
        assert doc["recovery_p99_latency"] == 0.0
        assert doc["restage_bytes"] == 0 and doc["restage_blocks"] == 0
        assert doc["scrub_scanned_slots"] == 0
        assert doc["scrub_mismatches"] == 0
        assert doc["scrub_repaired"] == 0
        assert doc["scrub_read_repairs"] == 0
        assert doc["corrupt_values_served"] == 0
        assert doc["watchdog_transitions"] == 0
