"""Persistence: graphs, placements, policy summaries."""

import json

import numpy as np
import pytest

from repro.core.policy import Placement, partition_policy
from repro.core.serialization import (
    load_placement,
    load_policy_summary,
    policy_summary,
    save_placement,
    save_policy_summary,
)
from repro.core.solver import SolverConfig, solve_policy
from repro.gnn.graph import power_law_graph
from repro.gnn.io import load_graph, read_edge_list, save_graph, write_edge_list
from repro.utils.stats import zipf_pmf


class TestGraphNpz:
    def test_roundtrip(self, tmp_path):
        graph = power_law_graph(300, 2000, seed=0)
        path = tmp_path / "g.npz"
        save_graph(path, graph)
        loaded = load_graph(path)
        assert np.array_equal(loaded.indptr, graph.indptr)
        assert np.array_equal(loaded.indices, graph.indices)

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(ValueError):
            load_graph(path)


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        graph = power_law_graph(50, 200, seed=1)
        path = tmp_path / "edges.txt"
        write_edge_list(path, graph)
        # The CSR already holds both directions, so parse asymmetric.
        loaded = read_edge_list(path, num_nodes=50, symmetric=False)
        assert loaded.num_edges == graph.num_edges
        for u in range(50):
            assert sorted(loaded.neighbors(u)) == sorted(graph.neighbors(u))

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# header\n\n0 1\n1 2\n")
        graph = read_edge_list(path, symmetric=False)
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_symmetric_doubles_edges(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n")
        graph = read_edge_list(path, symmetric=True)
        assert graph.neighbors(0).tolist() == [1]
        assert graph.neighbors(1).tolist() == [0]

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="expected"):
            read_edge_list(path)


class TestPlacementNpz:
    def test_roundtrip(self, tmp_path):
        placement = partition_policy(zipf_pmf(500, 1.1), 40, 4)
        path = tmp_path / "placement.npz"
        save_placement(path, placement)
        loaded = load_placement(path)
        assert loaded.num_entries == placement.num_entries
        assert loaded.num_gpus == placement.num_gpus
        for a, b in zip(loaded.per_gpu, placement.per_gpu):
            assert np.array_equal(a, b)

    def test_empty_gpus_roundtrip(self, tmp_path):
        placement = Placement(
            num_entries=10,
            per_gpu=(np.array([1, 2]), np.empty(0, dtype=np.int64)),
        )
        path = tmp_path / "p.npz"
        save_placement(path, placement)
        loaded = load_placement(path)
        assert loaded.per_gpu[1].size == 0

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, whatever=np.arange(2))
        with pytest.raises(ValueError):
            load_placement(path)


class TestPolicySummary:
    @pytest.fixture(scope="class")
    def solved(self, ):
        from repro.hardware.platform import server_a

        hot = zipf_pmf(400, 1.2) * 1000
        return solve_policy(
            server_a(), hot, 40, 512, SolverConfig(coarse_block_frac=0.05)
        )

    def test_summary_fields(self, solved):
        summary = policy_summary(solved)
        assert summary["platform"] == "server-a"
        assert summary["entries"] == 400
        assert len(summary["capacities"]) == 4
        assert summary["estimated_time_seconds"] > 0
        json.dumps(summary)  # must be JSON-able

    def test_save_load(self, solved, tmp_path):
        path = tmp_path / "policy.json"
        save_policy_summary(path, solved)
        loaded = load_policy_summary(path)
        assert loaded == policy_summary(solved)

    def test_missing_fields_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"platform": "x"}')
        with pytest.raises(ValueError):
            load_policy_summary(path)
