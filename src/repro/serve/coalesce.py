"""Cross-request coalescing: per-GPU micro-batching of admitted requests.

Under load, consecutive requests against the same destination GPU overlap
heavily on a skewed key distribution — the hot head of the Zipf curve is
in every batch.  Serving them one by one re-extracts the same keys over
and over.  A :class:`MicroBatcher` instead drains its GPU's bounded queue
in small groups under a batching policy (batch-size cap, bounded linger,
SLO-aware early flush), unions and deduplicates the member keys into
*one* extraction demand, prices it once through the shared
:func:`~repro.core.pipeline.price_demand` stage, and scatters the results
back so every member keeps its own deadline/hedging/latency accounting.

Coalescing is strictly opt-in (:attr:`BatchingMode.OFF` is the default):
when off, the serving path is exactly the pre-coalescing one, which is
what keeps the golden fixtures byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.serve.queueing import BoundedRequestQueue
from repro.serve.request import Request, Response

__all__ = [
    "BatchingMode",
    "CoalesceConfig",
    "CoalesceOutcome",
    "MicroBatcher",
    "coalesce_keys",
]


class BatchingMode(str, Enum):
    """Whether the serving loop coalesces queued requests."""

    OFF = "off"
    COALESCE = "coalesce"


@dataclass(frozen=True)
class CoalesceConfig:
    """Batching policy of one GPU's micro-batcher.

    Attributes:
        mode: :attr:`BatchingMode.OFF` disables coalescing outright.
        max_batch: most requests fused into one extraction; reaching it
            flushes immediately (no linger).
        linger_seconds: how long the oldest queued request may wait for
            company before the batch flushes anyway.
        slo_early_flush: flush early when the tightest member deadline
            minus the estimated service time would otherwise pass while
            lingering — trading dedup for deadline safety.
    """

    mode: BatchingMode = BatchingMode.OFF
    max_batch: int = 8
    linger_seconds: float = 0.0
    slo_early_flush: bool = True

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max batch must be at least 1")
        if self.linger_seconds < 0:
            raise ValueError("linger must be non-negative")


def coalesce_keys(requests: list[Request]) -> tuple[np.ndarray, int]:
    """Union + dedup of the member key sets.

    Returns ``(union, total)`` where ``union`` is the sorted unique key
    array extracted once for the whole batch and ``total`` counts the
    member keys before dedup; ``total / len(union)`` is the batch's dedup
    ratio.  Members scatter their results back with
    ``np.searchsorted(union, request.keys)``.
    """
    if not requests:
        return np.empty(0, dtype=np.int64), 0
    parts = [np.ascontiguousarray(r.keys, dtype=np.int64) for r in requests]
    total = sum(len(p) for p in parts)
    union = np.unique(np.concatenate(parts)) if len(parts) > 1 else np.unique(parts[0])
    return union, total


@dataclass
class CoalesceOutcome:
    """What one coalesced service did, for the soak report and tests."""

    responses: list[Response] = field(default_factory=list)
    #: members actually fused into the shared extraction.  Expired-on-
    #: arrival members are dropped *before* extraction and are not
    #: counted here (they still appear in ``responses`` as EXPIRED).
    batch_size: int = 0
    #: unique keys actually extracted.
    union_size: int = 0
    #: member keys before dedup.
    total_keys: int = 0
    #: shared extraction price every member waited for.
    service_time: float = 0.0
    #: when the shared extraction finishes (the GPU is busy until then).
    completed_at: float = 0.0
    #: host-resolved keys served from the lookahead staging buffer.
    prefetch_hits: int = 0

    @property
    def dedup_ratio(self) -> float:
        """Keys saved by coalescing: total member keys per unique key."""
        return self.total_keys / self.union_size if self.union_size else 1.0


class MicroBatcher:
    """Drains one GPU's bounded queue in coalescable micro-batches.

    The batcher owns no threads and no clock: the serving loop asks
    :meth:`flush_at` when the next batch should form (given when the GPU
    frees up) and calls :meth:`take` at that instant.  That keeps the
    policy identical under the simulated-clock soak loop and the
    wall-clock worker pool.
    """

    def __init__(
        self,
        gpu: int,
        queue: BoundedRequestQueue,
        config: CoalesceConfig | None = None,
    ) -> None:
        self.gpu = gpu
        self.config = config or CoalesceConfig(mode=BatchingMode.COALESCE)
        self._queue = queue

    @property
    def pending(self) -> int:
        return self._queue.depth

    def flush_at(self, free_at: float) -> float | None:
        """When the next batch should be served, or None if nothing queued.

        A full batch (``max_batch`` queued) flushes as soon as the GPU is
        free; otherwise the oldest request lingers up to
        ``linger_seconds`` waiting for company, flushing earlier when the
        tightest member deadline (minus the estimated service time) would
        pass while waiting.
        """
        head = self._queue.peek()
        if head is None:
            return None
        if self._queue.depth >= self.config.max_batch:
            return free_at
        target = head.arrival + self.config.linger_seconds
        if self.config.slo_early_flush:
            tightest = min(r.deadline for r in self._queue.queued())
            if math.isfinite(tightest):
                estimate = self._queue.estimator.estimate()
                target = min(target, tightest - estimate)
        return max(free_at, target)

    def take(self, now: float) -> list[Request]:
        """Pop up to ``max_batch`` requests to fuse at time ``now``."""
        batch: list[Request] = []
        while len(batch) < self.config.max_batch:
            request = self._queue.pop(now)
            if request is None:
                break
            batch.append(request)
        return batch
