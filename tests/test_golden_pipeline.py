"""Golden equivalence: the extraction pipeline vs. the pinned fixture.

``tests/golden/extraction_golden.json`` was generated from the
pre-pipeline implementation (the inlined ``FactoredExtractor.plan`` /
``simulate_batch`` / ``ServingRuntime`` paths).  Replaying the same seeded
scenarios through today's code and asserting byte-identical plans, prices,
hedge races and lookups is what makes the refactor an *equivalence*: if a
stage of :mod:`repro.core.pipeline` ever drifts — a reroute choosing a
different replica, a price model invoked with different inputs, a group
ordered differently — some digest or float below stops matching.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "generate_golden", GOLDEN_DIR / "generate_golden.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads((GOLDEN_DIR / "extraction_golden.json").read_text())


@pytest.fixture(scope="module")
def replayed() -> dict:
    # Round-trip through JSON so float representation matches the fixture.
    return json.loads(json.dumps(_load_generator().build(), sort_keys=True))


def test_scenario_coverage(golden, replayed):
    assert set(replayed["scenarios"]) == set(golden["scenarios"])
    assert len(golden["scenarios"]) >= 5


@pytest.mark.parametrize(
    "scenario",
    ["a_healthy", "a_gpu1_down", "a_slow_link_excl3", "c_healthy", "c_gpu2_down"],
)
@pytest.mark.parametrize(
    "section", ["plans", "prices", "batch", "event_sim", "serve", "lookups"]
)
def test_pipeline_matches_golden(golden, replayed, scenario, section):
    """Every consumer's plans/prices are byte-identical to the fixture."""
    want = golden["scenarios"][scenario][section]
    got = replayed["scenarios"][scenario][section]
    assert got == want, (
        f"{scenario}/{section} diverged from the pre-pipeline golden fixture"
    )


def test_golden_fixture_exercises_faults(golden):
    """The fixture actually covers the degraded paths it claims to pin."""
    degraded = golden["scenarios"]["a_gpu1_down"]
    assert any(p["rerouted_keys"] > 0 for p in degraded["plans"])
    assert any(1 in p["failed_sources"] for p in degraded["plans"])
    excl = golden["scenarios"]["a_slow_link_excl3"]
    # Excluded sources reroute but are *not* failures.
    assert any(p["rerouted_keys"] > 0 for p in excl["plans"])
    assert all(3 not in p["failed_sources"] for p in excl["plans"])
    # The hedge race is pinned via the event-driven racer on every
    # scenario (sub-millisecond service times keep the *serving* hedge
    # from tripping, so the race lives in the event_sim section).
    for record in golden["scenarios"].values():
        total, primary, hedge_time, winner = record["event_sim"]["hedged"]
        assert winner in ("primary", "hedge")
        assert total == min(primary, hedge_time)
        assert all(r["status"] == "ok" for r in record["serve"])
