"""Fault model, injection, and graceful degradation (the robustness layer).

A :class:`FaultSpec` describes one failure (GPU drop-out, link
degradation/partition, host-gather stall, solver timeout, refresher
interruption, corrupted location slot) with onset, duration, and severity;
a :class:`FaultPlan` schedules many deterministically.  The runtime never
reads specs directly: :class:`FaultInjector` realizes one-shot state
corruption and flattens standing faults into :class:`HealthView` snapshots
that the extractor, solver fallback chain, refresher, and simulators
consume.  ``python -m repro chaos`` (see :mod:`repro.faults.chaos`) runs
the scenario matrix end to end.

Note: :mod:`repro.faults.chaos` is intentionally not imported here — it
pulls in the whole core/sim stack, while this package must stay importable
from inside :mod:`repro.sim.engine`.
"""

from repro.faults.degrade import DegradedPlatform, degraded_platform, reroute_demand
from repro.faults.injector import CORRUPT_SOURCE_BASE, FaultInjector
from repro.faults.spec import (
    HEALTHY,
    FaultKind,
    FaultPlan,
    FaultSpec,
    HealthView,
)

__all__ = [
    "CORRUPT_SOURCE_BASE",
    "DegradedPlatform",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "HEALTHY",
    "HealthView",
    "degraded_platform",
    "reroute_demand",
]
