"""Background cache Refresher (§7.2) — functional and timeline."""

import numpy as np
import pytest

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.policy import partition_policy, replication_policy
from repro.core.refresher import (
    RefreshConfig,
    Refresher,
    simulate_refresh_timeline,
)

N, D = 2000, 8


@pytest.fixture
def cache(platform_a, small_table, skewed_hotness):
    placement = replication_policy(skewed_hotness, 200, 4)
    return MultiGpuEmbeddingCache(platform_a, small_table, placement)


class TestRefreshTrigger:
    def test_triggers_on_improvement(self, cache):
        refresher = Refresher(cache, RefreshConfig(trigger_ratio=1.05))
        assert refresher.should_refresh(current_time=1.0, candidate_time=0.5)

    def test_skips_marginal_improvement(self, cache):
        refresher = Refresher(cache, RefreshConfig(trigger_ratio=1.05))
        assert not refresher.should_refresh(current_time=1.0, candidate_time=0.99)

    def test_skips_zero_candidate(self, cache):
        refresher = Refresher(cache)
        assert not refresher.should_refresh(1.0, 0.0)


class TestFunctionalRefresh:
    def test_refresh_to_new_placement(self, cache, small_table, skewed_hotness, rng):
        refresher = Refresher(cache, RefreshConfig(update_batch_entries=64))
        new_placement = partition_policy(skewed_hotness, 200, 4)
        outcome = refresher.refresh(new_placement)
        assert outcome.triggered
        assert outcome.entries_moved > 0
        # Lookups are exact after the refresh.
        keys = rng.integers(0, N, size=500)
        for gpu in range(4):
            assert np.array_equal(cache.lookup(gpu, keys).values, small_table[keys])
        assert cache.placement.replication_factor() == pytest.approx(1.0)

    def test_noop_refresh(self, cache):
        refresher = Refresher(cache)
        outcome = refresher.refresh(cache.placement)
        assert not outcome.triggered
        assert outcome.entries_moved == 0

    def test_lookups_correct_at_every_step(
        self, cache, small_table, skewed_hotness, rng
    ):
        """§7.2's consistency: no lookup may see a dangling slot mid-refresh."""
        refresher = Refresher(cache, RefreshConfig(update_batch_entries=32))
        new_placement = partition_policy(skewed_hotness, 200, 4)
        keys = rng.integers(0, N, size=200)
        steps = 0
        for _outcome in refresher.refresh_steps(new_placement):
            for gpu in range(4):
                result = cache.lookup(gpu, keys)
                assert np.array_equal(result.values, small_table[keys])
            steps += 1
        assert steps > 2  # actually exercised interleaving

    def test_capacity_never_exceeded_mid_refresh(
        self, cache, skewed_hotness
    ):
        refresher = Refresher(cache, RefreshConfig(update_batch_entries=16))
        new_placement = partition_policy(skewed_hotness, 200, 4)
        for _ in refresher.refresh_steps(new_placement):
            for gpu in range(4):
                assert cache.store(gpu).arena.used_slots <= 200

    def test_refresh_estimated_duration(self, cache, skewed_hotness):
        config = RefreshConfig(solve_seconds=10.0, entries_per_second=1000.0)
        refresher = Refresher(cache, config)
        outcome = refresher.refresh(partition_policy(skewed_hotness, 200, 4))
        expected = 10.0 + outcome.entries_moved / 1000.0
        assert outcome.estimated_duration == pytest.approx(expected)


class TestRefreshConfigValidation:
    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            RefreshConfig(update_batch_entries=0)

    def test_rejects_bad_impact(self):
        with pytest.raises(ValueError):
            RefreshConfig(foreground_impact=1.0)

    def test_rejects_bad_trigger(self):
        with pytest.raises(ValueError):
            RefreshConfig(trigger_ratio=0.9)

    def test_rejects_bad_throughput(self):
        with pytest.raises(ValueError):
            RefreshConfig(entries_per_second=0)


class TestTimeline:
    def test_latency_elevated_only_inside_windows(self):
        timeline = simulate_refresh_timeline(
            baseline_latency=2e-3,
            total_duration=200.0,
            refresh_starts=(40.0, 150.0),
            entries_to_move=1_000_000,
            config=RefreshConfig(foreground_impact=0.10),
        )
        assert len(timeline.refresh_windows) == 2
        before = timeline.mean_latency(0, 39)
        during = timeline.mean_latency(41, 45)
        after = timeline.mean_latency(70, 100)
        assert before == pytest.approx(2e-3)
        assert during == pytest.approx(2.2e-3)
        assert after == pytest.approx(2e-3)

    def test_impact_bounded_at_config(self):
        timeline = simulate_refresh_timeline(
            2e-3, 100.0, (10.0,), 500_000, RefreshConfig(foreground_impact=0.08)
        )
        assert timeline.latencies.max() <= 2e-3 * 1.08 + 1e-12

    def test_window_duration_scales_with_entries(self):
        cfg = RefreshConfig(solve_seconds=5.0, entries_per_second=100_000)
        t = simulate_refresh_timeline(1e-3, 100.0, (0.0,), 1_000_000, cfg)
        start, stop = t.refresh_windows[0]
        assert stop - start == pytest.approx(5.0 + 10.0)

    def test_window_clamped_to_duration(self):
        t = simulate_refresh_timeline(1e-3, 50.0, (45.0,), 10_000_000)
        assert t.refresh_windows[0][1] == 50.0


class TestTriggerEdgeCases:
    """Satellite coverage: worse candidates and degenerate hotness."""

    def test_worse_solve_does_not_trigger(self, cache):
        refresher = Refresher(cache, RefreshConfig(trigger_ratio=1.05))
        # The fresh solve came back *worse* than what is deployed.
        assert not refresher.should_refresh(current_time=1.0, candidate_time=1.4)

    def test_equal_solve_does_not_trigger(self, cache):
        refresher = Refresher(cache, RefreshConfig(trigger_ratio=1.05))
        assert not refresher.should_refresh(current_time=1.0, candidate_time=1.0)

    def test_all_zero_hotness_refresh_is_safe(self, cache, small_table, rng):
        from repro.core.policy import hot_replicate_warm_partition_policy

        hotness = np.zeros(N)
        new_placement = hot_replicate_warm_partition_policy(hotness, 200, 4, 0.5)
        outcome = Refresher(cache, RefreshConfig(update_batch_entries=64)).refresh(
            new_placement
        )
        assert outcome.triggered
        keys = rng.integers(0, N, size=300)
        for gpu in range(4):
            assert np.array_equal(cache.lookup(gpu, keys).values, small_table[keys])
        cache.check_integrity()


class TestTransactionalRollback:
    """ISSUE acceptance: an interrupted refresh leaves the cache bit-identical."""

    def _snapshot(self, cache, rng):
        probe = rng.integers(0, N, size=300)
        return (
            cache.source_map.copy(),
            probe,
            [cache.lookup(g, probe).values.copy() for g in range(4)],
        )

    def test_interrupt_rolls_back_bit_identical(
        self, cache, skewed_hotness, rng
    ):
        from repro.core.refresher import RefreshInterrupted
        from repro.obs import MetricsRegistry, use_registry

        pre_map, probe, pre_values = self._snapshot(cache, rng)
        new_placement = partition_policy(skewed_hotness, 200, 4)
        refresher = Refresher(cache, RefreshConfig(update_batch_entries=32))
        calls = {"n": 0}

        def abort():
            calls["n"] += 1
            return calls["n"] > 4

        reg = MetricsRegistry("t")
        with use_registry(reg):
            with pytest.raises(RefreshInterrupted) as info:
                for _ in refresher.refresh_steps(new_placement, abort=abort):
                    pass
        assert info.value.outcome.interrupted
        assert info.value.outcome.rolled_back
        # The observable cache state is exactly the pre-refresh state.
        assert np.array_equal(cache.source_map, pre_map)
        for gpu in range(4):
            assert np.array_equal(cache.lookup(gpu, probe).values, pre_values[gpu])
        cache.check_integrity()
        assert reg.value("refresher.interrupted") == 1
        assert reg.value("refresher.rollbacks") == 1

    def test_refresh_wrapper_returns_outcome_instead_of_raising(
        self, cache, skewed_hotness, rng
    ):
        pre_map, probe, pre_values = self._snapshot(cache, rng)
        refresher = Refresher(cache, RefreshConfig(update_batch_entries=32))
        outcome = refresher.refresh(
            partition_policy(skewed_hotness, 200, 4), abort=lambda: True
        )
        assert outcome.interrupted and outcome.rolled_back
        assert outcome.entries_moved == 0
        assert np.array_equal(cache.source_map, pre_map)
        for gpu in range(4):
            assert np.array_equal(cache.lookup(gpu, probe).values, pre_values[gpu])

    def test_abort_that_never_fires_completes_normally(self, cache, skewed_hotness):
        refresher = Refresher(cache, RefreshConfig(update_batch_entries=64))
        outcome = refresher.refresh(
            partition_policy(skewed_hotness, 200, 4), abort=lambda: False
        )
        assert outcome.triggered and not outcome.interrupted
        assert outcome.entries_moved > 0

    def test_midstep_exception_rolls_back_and_propagates(
        self, cache, skewed_hotness, rng, monkeypatch
    ):
        import repro.core.refresher as refresher_module

        pre_map, probe, pre_values = self._snapshot(cache, rng)
        real_apply = refresher_module.apply_diff_step
        calls = {"n": 0}

        def flaky_apply(store, table, evict, insert):
            calls["n"] += 1
            if calls["n"] == 3:
                raise RuntimeError("simulated mid-step crash")
            real_apply(store, table, evict, insert)

        monkeypatch.setattr(refresher_module, "apply_diff_step", flaky_apply)
        refresher = Refresher(cache, RefreshConfig(update_batch_entries=32))
        with pytest.raises(RuntimeError, match="simulated mid-step crash"):
            refresher.refresh(partition_policy(skewed_hotness, 200, 4))
        monkeypatch.undo()
        assert np.array_equal(cache.source_map, pre_map)
        for gpu in range(4):
            assert np.array_equal(cache.lookup(gpu, probe).values, pre_values[gpu])
        cache.check_integrity()

    def test_interrupted_refresh_can_be_retried(self, cache, skewed_hotness, rng):
        refresher = Refresher(cache, RefreshConfig(update_batch_entries=32))
        target = partition_policy(skewed_hotness, 200, 4)
        first = refresher.refresh(target, abort=lambda: True)
        assert first.rolled_back
        second = refresher.refresh(target)
        assert second.triggered and not second.interrupted
        assert cache.placement.replication_factor() == pytest.approx(1.0)


class TestDoubleFaultRollback:
    """A failure raised *during rollback* must still restore the cache.

    The undo-log replay is itself made of ``apply_diff_step`` calls; if
    one of those dies (the double fault), the refresher abandons the
    replay and rebuilds the stores wholesale from the host table — the
    location state is restored and integrity verified either way.
    """

    def test_abort_then_rollback_crash_still_restores(
        self, cache, skewed_hotness, rng, monkeypatch
    ):
        import repro.core.refresher as refresher_module
        from repro.obs import MetricsRegistry, use_registry

        pre_map = cache.source_map.copy()
        probe = rng.integers(0, N, size=300)
        pre_values = [cache.lookup(g, probe).values.copy() for g in range(4)]

        real_apply = refresher_module.apply_diff_step
        state = {"rolling_back": False}

        def abort():
            # fires after a few forward steps; every apply_diff_step call
            # from here on is the rollback replaying its undo log.
            fire = state.get("steps", 0) >= 3
            state["steps"] = state.get("steps", 0) + 1
            if fire:
                state["rolling_back"] = True
            return fire

        def crashing_apply(store, table, evict, insert):
            if state["rolling_back"]:
                raise RuntimeError("simulated crash during rollback replay")
            real_apply(store, table, evict, insert)

        monkeypatch.setattr(refresher_module, "apply_diff_step", crashing_apply)
        refresher = Refresher(cache, RefreshConfig(update_batch_entries=32))
        reg = MetricsRegistry("t")
        with use_registry(reg):
            outcome = refresher.refresh(
                partition_policy(skewed_hotness, 200, 4), abort=abort
            )
        monkeypatch.undo()

        assert outcome.interrupted and outcome.rolled_back
        # despite the rollback replay dying, location state is restored...
        assert np.array_equal(cache.source_map, pre_map)
        # ...every lookup is bit-identical to the pre-refresh state...
        for gpu in range(4):
            assert np.array_equal(cache.lookup(gpu, probe).values, pre_values[gpu])
        # ...and integrity verification passes.
        assert cache.verify_integrity() == []
        assert reg.value("refresher.rollback.double_faults") == 1

    def test_midstep_crash_with_poisoned_rollback(
        self, cache, skewed_hotness, rng, monkeypatch
    ):
        """Same double fault, reached through the mid-step exception path."""
        import repro.core.refresher as refresher_module

        pre_map = cache.source_map.copy()
        probe = rng.integers(0, N, size=300)
        pre_values = [cache.lookup(g, probe).values.copy() for g in range(4)]

        real_apply = refresher_module.apply_diff_step
        calls = {"n": 0}

        def dying_apply(store, table, evict, insert):
            calls["n"] += 1
            if calls["n"] >= 3:  # 3rd forward step and every replay after
                raise RuntimeError("simulated cascading crash")
            real_apply(store, table, evict, insert)

        monkeypatch.setattr(refresher_module, "apply_diff_step", dying_apply)
        refresher = Refresher(cache, RefreshConfig(update_batch_entries=32))
        with pytest.raises(RuntimeError, match="cascading"):
            refresher.refresh(partition_policy(skewed_hotness, 200, 4))
        monkeypatch.undo()

        assert np.array_equal(cache.source_map, pre_map)
        for gpu in range(4):
            assert np.array_equal(cache.lookup(gpu, probe).values, pre_values[gpu])
        assert cache.verify_integrity() == []
