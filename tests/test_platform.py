"""Platform model: bandwidths, tolerances, cost coefficients, presets."""

import pytest

from repro.hardware.platform import HOST, server_a, server_b, server_c, single_gpu


class TestPresets:
    def test_server_a_shape(self, platform_a):
        assert platform_a.num_gpus == 4
        assert platform_a.gpu.name == "V100-16GB"

    def test_server_b_shape(self, platform_b):
        assert platform_b.num_gpus == 8
        assert platform_b.gpu.name == "V100-32GB"

    def test_server_c_shape(self, platform_c):
        assert platform_c.num_gpus == 8
        assert platform_c.gpu.name == "A100-80GB"

    def test_single_gpu_sources(self, platform_1gpu):
        assert platform_1gpu.num_gpus == 1
        assert platform_1gpu.sources_for(0) == [0, HOST]


class TestBandwidth:
    def test_local_is_fastest(self, any_platform):
        local = any_platform.bandwidth(0, 0)
        for src in any_platform.sources_for(0):
            assert local >= any_platform.bandwidth(0, src)

    def test_host_is_pcie(self, platform_a):
        assert platform_a.bandwidth(0, HOST) == platform_a.pcie_bandwidth

    def test_hardwired_pair(self, platform_a):
        assert platform_a.bandwidth(0, 1) == pytest.approx(50e9)

    def test_switch_fair_share(self, platform_c):
        # 300 GB/s outbound shared among 7 potential readers.
        assert platform_c.bandwidth(0, 1) == pytest.approx(300e9 / 7)

    def test_switch_peak_pair_is_full_outbound(self, platform_c):
        assert platform_c.peak_pair_bandwidth(0, 1) == pytest.approx(300e9)

    def test_unconnected_pair_zero(self, platform_b):
        assert platform_b.bandwidth(0, 5) == 0.0

    def test_pcie_slower_than_nvlink(self, any_platform):
        remote = [s for s in any_platform.sources_for(0) if s not in (0, HOST)]
        for src in remote:
            assert any_platform.bandwidth(0, src) > any_platform.pcie_bandwidth


class TestSources:
    def test_dgx1_excludes_unconnected(self, platform_b):
        sources = platform_b.sources_for(0)
        assert 5 not in sources and 6 not in sources and 7 not in sources
        assert sources[0] == 0 and sources[-1] == HOST

    def test_switch_includes_all_peers(self, platform_c):
        assert len(platform_c.sources_for(3)) == 1 + 7 + 1

    def test_rejects_bad_gpu_id(self, platform_a):
        with pytest.raises(ValueError):
            platform_a.sources_for(4)


class TestTolerance:
    def test_local_tolerates_all_cores(self, any_platform):
        assert any_platform.tolerance(0, 0) == any_platform.gpu.num_cores

    def test_host_tolerates_few_cores(self, any_platform):
        # Figure 6: host extraction saturates below 10% of SMs.
        assert any_platform.tolerance(0, HOST) <= any_platform.gpu.num_cores * 0.1

    def test_remote_between_host_and_local(self, platform_a):
        host = platform_a.tolerance(0, HOST)
        remote = platform_a.tolerance(0, 1)
        local = platform_a.tolerance(0, 0)
        assert host < remote < local

    def test_unconnected_zero(self, platform_b):
        assert platform_b.tolerance(0, 5) == 0


class TestCostPerByte:
    def test_reciprocal_of_bandwidth(self, platform_a):
        assert platform_a.cost_per_byte(0, 1) == pytest.approx(1.0 / 50e9)

    def test_unconnected_infinite(self, platform_b):
        assert platform_b.cost_per_byte(0, 5) == float("inf")

    def test_host_cheapest_never(self, any_platform):
        # Host must never be cheaper than any connected source.
        for src in any_platform.sources_for(0):
            assert any_platform.cost_per_byte(0, HOST) >= any_platform.cost_per_byte(
                0, src
            ) or src == HOST


class TestCapacity:
    def test_cache_capacity_entries(self, platform_c):
        assert platform_c.cache_capacity_entries(512, 0.1, 1000) == 100

    def test_rejects_bad_ratio(self, platform_c):
        with pytest.raises(ValueError):
            platform_c.cache_capacity_entries(512, 1.5, 1000)

    def test_max_cache_ratio_caps_at_one(self, platform_c):
        assert platform_c.max_cache_ratio(4, 10) == 1.0

    def test_max_cache_ratio_with_reservation(self, platform_a):
        full = platform_a.max_cache_ratio(512, 10**9)
        reserved = platform_a.max_cache_ratio(512, 10**9, reserved_bytes=8 * 2**30)
        assert reserved < full
