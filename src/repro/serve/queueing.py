"""Admission control: bounded per-GPU queues, backpressure, SLO shedding.

Production embedding servers bound their queues — an unbounded queue under
sustained overload converts a throughput problem into an unbounded-latency
problem.  Three backpressure policies are supported when a queue is full:

* ``block`` — the producer stalls: the request parks in an upstream
  buffer and is admitted when space frees (closed-loop semantics);
* ``reject`` — fail fast with :attr:`~repro.serve.request.RequestStatus.REJECTED`;
* ``shed-oldest`` — drop the head of the queue (it has waited longest and
  is most likely to miss its deadline anyway) to admit the newcomer.

Independent of the full-queue policy, SLO-aware load shedding drops a
request *at admission* when the latency estimator predicts it cannot meet
its deadline or the configured SLO — shedding early is strictly cheaper
than doing the work and missing anyway.  The estimator is fed from (and
feeds) the ``serve.batch.seconds`` histograms in :mod:`repro.obs`, so its
view and the exported metrics can never disagree.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from enum import Enum

from repro.obs import Histogram, get_registry
from repro.serve.request import Request, RequestStatus

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionResult",
    "BoundedRequestQueue",
    "LatencyEstimator",
    "QueuePolicy",
]


class QueuePolicy(str, Enum):
    """What happens to a new request when its GPU's queue is full."""

    BLOCK = "block"
    REJECT = "reject"
    SHED_OLDEST = "shed-oldest"


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of the admission controller.

    Attributes:
        capacity: maximum queued requests per GPU.
        policy: full-queue backpressure policy.
        slo_seconds: target end-to-end latency; ``inf`` disables SLO
            shedding (deadline-based shedding still applies).
        shed_on_slo: predictively shed at admission when the estimated
            completion would bust the request's deadline or the SLO.
        estimator_alpha: EWMA smoothing factor of the latency estimator.
        estimator_prior: service-time estimate returned *before* the
            first observation.  The estimator historically answered 0.0
            cold, which made the micro-batcher's SLO early-flush linger
            until the raw deadline with zero service-time margin — the
            first batches of a run could miss SLO by construction.
            ``None`` keeps the learn-from-zero behaviour (admission
            still never sheds on a zero estimate).
    """

    capacity: int = 64
    policy: QueuePolicy = QueuePolicy.REJECT
    slo_seconds: float = math.inf
    shed_on_slo: bool = True
    estimator_alpha: float = 0.2
    estimator_prior: float | None = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        if self.slo_seconds <= 0:
            raise ValueError("SLO must be positive")
        if not 0 < self.estimator_alpha <= 1:
            raise ValueError("estimator alpha must be in (0, 1]")
        if self.estimator_prior is not None and self.estimator_prior <= 0:
            raise ValueError("estimator prior must be positive")


class LatencyEstimator:
    """EWMA service-time estimate backed by an obs histogram.

    Every observation lands in the registry histogram
    ``serve.batch.seconds{gpu=…}`` (the export surface) *and* updates a
    local EWMA (the fast estimate admission control reads per request).
    :meth:`percentile` answers tail questions straight from the shared
    histogram buckets, so the admission view is the exported view.
    """

    def __init__(
        self, gpu: int, alpha: float = 0.2, prior: float | None = None
    ) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if prior is not None and prior <= 0:
            raise ValueError("prior must be positive")
        self.gpu = gpu
        self.alpha = alpha
        self.prior = prior
        self._ewma: float | None = None

    def _histogram(self) -> Histogram:
        return get_registry().histogram("serve.batch.seconds", gpu=self.gpu)

    def observe(self, seconds: float) -> None:
        """Record one measured service time."""
        seconds = float(seconds)
        self._histogram().observe(seconds)
        if self._ewma is None:
            self._ewma = seconds
        else:
            self._ewma += self.alpha * (seconds - self._ewma)

    def estimate(self) -> float:
        """Expected service time of the next batch.

        Before the first sample, answers the configured ``prior`` (so
        SLO-margin consumers like the micro-batcher's early flush have a
        service-time estimate from the very first batch); without a
        prior it answers 0.0 and the consumers learn from observation.
        The first real observation seeds the EWMA directly, overriding
        the prior rather than averaging with it.
        """
        if self._ewma is not None:
            return self._ewma
        return self.prior if self.prior is not None else 0.0

    def percentile(self, q: float) -> float:
        """Tail latency from the shared obs histogram buckets."""
        return self._histogram().percentile(q)


@dataclass
class AdmissionResult:
    """What admission did with one request."""

    admitted: bool
    #: set iff the request was dropped at admission (shed / rejected).
    status: RequestStatus | None = None
    #: requests evicted to make room (shed-oldest policy).
    displaced: list[Request] = field(default_factory=list)
    #: request parked upstream, to be admitted when space frees (block).
    blocked: bool = False


class BoundedRequestQueue:
    """One GPU's bounded FIFO with backpressure and SLO shedding."""

    def __init__(
        self,
        gpu: int,
        config: AdmissionConfig | None = None,
        estimator: LatencyEstimator | None = None,
    ) -> None:
        self.gpu = gpu
        self.config = config or AdmissionConfig()
        self.estimator = estimator or LatencyEstimator(
            gpu,
            alpha=self.config.estimator_alpha,
            prior=self.config.estimator_prior,
        )
        self._queue: deque[Request] = deque()
        #: producer-side buffer used by the ``block`` policy only.
        self._blocked: deque[Request] = deque()
        self.max_depth = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._queue)

    @property
    def blocked_depth(self) -> int:
        return len(self._blocked)

    def __len__(self) -> int:
        return len(self._queue)

    def peek(self) -> Request | None:
        """The request :meth:`pop` would return next, without removing it."""
        return self._queue[0] if self._queue else None

    def queued(self) -> tuple[Request, ...]:
        """Snapshot of the queued requests in FIFO order (excludes blocked
        producers); the micro-batcher reads deadlines off this to decide
        when to flush."""
        return tuple(self._queue)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _predicted_wait(self) -> float:
        """Estimated queueing + service time for a request admitted now."""
        est = self.estimator.estimate()
        return (self.depth + 1) * est

    def _should_shed(self, request: Request, now: float) -> bool:
        if not self.config.shed_on_slo:
            return False
        predicted = self._predicted_wait()
        if predicted <= 0:
            return False  # no samples yet — admit and learn
        if predicted > request.remaining(now):
            return True
        return predicted > self.config.slo_seconds

    def offer(self, request: Request, now: float) -> AdmissionResult:
        """Admit, shed, reject, or block ``request`` at time ``now``."""
        reg = get_registry()
        if request.expired(now) or self._should_shed(request, now):
            reg.counter("serve.admission", gpu=self.gpu, result="shed").inc()
            return AdmissionResult(admitted=False, status=RequestStatus.SHED)
        if self.depth >= self.config.capacity:
            policy = self.config.policy
            if policy is QueuePolicy.REJECT:
                reg.counter(
                    "serve.admission", gpu=self.gpu, result="rejected"
                ).inc()
                return AdmissionResult(
                    admitted=False, status=RequestStatus.REJECTED
                )
            if policy is QueuePolicy.BLOCK:
                self._blocked.append(request)
                reg.counter(
                    "serve.admission", gpu=self.gpu, result="blocked"
                ).inc()
                return AdmissionResult(admitted=False, blocked=True)
            # shed-oldest: the head has waited longest; drop it for the
            # newcomer (whose deadline budget is freshest).
            displaced = [self._queue.popleft()]
            self._queue.append(request)
            reg.counter(
                "serve.admission", gpu=self.gpu, result="shed_oldest"
            ).inc()
            self._note_depth(reg)
            return AdmissionResult(
                admitted=True, displaced=displaced
            )
        self._queue.append(request)
        reg.counter("serve.admission", gpu=self.gpu, result="admitted").inc()
        self._note_depth(reg)
        return AdmissionResult(admitted=True)

    def _note_depth(self, reg) -> None:
        depth = self.depth
        if depth > self.max_depth:
            self.max_depth = depth
        reg.gauge("serve.queue.depth", gpu=self.gpu).set(depth)

    def _pump_blocked(self, now: float) -> None:
        """Admit parked (blocked) producers into freed queue space."""
        reg = get_registry()
        while self._blocked and self.depth < self.config.capacity:
            request = self._blocked.popleft()
            if request.expired(now):
                reg.counter(
                    "serve.admission", gpu=self.gpu, result="expired_blocked"
                ).inc()
                continue
            self._queue.append(request)
            self._note_depth(reg)

    def pop(self, now: float) -> Request | None:
        """Dequeue the next request (unblocking parked producers)."""
        request = self._queue.popleft() if self._queue else None
        self._pump_blocked(now)
        get_registry().gauge("serve.queue.depth", gpu=self.gpu).set(self.depth)
        return request


class AdmissionController:
    """Per-GPU bounded queues behind one submission surface."""

    def __init__(self, num_gpus: int, config: AdmissionConfig | None = None):
        if num_gpus < 1:
            raise ValueError("need at least one GPU")
        self.config = config or AdmissionConfig()
        self.queues = [
            BoundedRequestQueue(g, self.config) for g in range(num_gpus)
        ]

    def queue(self, gpu: int) -> BoundedRequestQueue:
        return self.queues[gpu]

    def estimator(self, gpu: int) -> LatencyEstimator:
        return self.queues[gpu].estimator

    def submit(self, request: Request, now: float) -> AdmissionResult:
        if not 0 <= request.gpu < len(self.queues):
            raise ValueError(f"request targets unknown GPU {request.gpu}")
        return self.queues[request.gpu].offer(request, now)

    @property
    def total_depth(self) -> int:
        return sum(q.depth for q in self.queues)

    @property
    def max_depth(self) -> int:
        return max(q.max_depth for q in self.queues)
