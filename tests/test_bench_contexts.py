"""Benchmark context builders (shared by every figure driver)."""

import pytest

from repro.bench.contexts import (
    DLR_BATCH_SIZE,
    GNN_BATCH_SIZE,
    dlr_cell,
    gnn_cell,
    platform_by_name,
)
from repro.hardware.platform import server_c


class TestPlatformByName:
    def test_known_names(self):
        for name in ("server-a", "server-b", "server-c"):
            assert platform_by_name(name).name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            platform_by_name("server-d")


class TestGnnCell:
    @pytest.fixture(scope="class")
    def cell(self):
        return gnn_cell(server_c(), "pa", "sage-sup")

    def test_context_shape(self, cell):
        ctx = cell.context
        assert ctx.kind == "gnn"
        assert ctx.num_entries == 111_000
        assert ctx.entry_bytes == 512
        assert ctx.batch_keys > GNN_BATCH_SIZE  # seeds + sampled neighbours

    def test_dense_and_sampling_times(self, cell):
        assert cell.context.dense_time > 0
        assert cell.context.sampling_time > 0

    def test_iterations_positive(self, cell):
        assert cell.iterations_per_epoch >= 1

    def test_capacity_from_scaled_memory(self, cell):
        assert 0 < cell.context.capacity_entries < 111_000

    def test_ratio_override(self):
        cell = gnn_cell(server_c(), "pa", "sage-sup", cache_ratio=0.02)
        assert cell.context.capacity_entries == int(0.02 * 111_000)

    def test_hotness_memoized(self):
        a = gnn_cell(server_c(), "pa", "sage-sup")
        b = gnn_cell(server_c(), "pa", "sage-sup")
        assert a.context.hotness is b.context.hotness


class TestDlrCell:
    @pytest.fixture(scope="class")
    def cell(self):
        return dlr_cell(server_c(), "syn-a", "dlrm")

    def test_context_shape(self, cell):
        ctx = cell.context
        assert ctx.kind == "dlr"
        assert ctx.num_entries == 800_000
        assert ctx.num_tables == 100
        assert ctx.batch_keys == DLR_BATCH_SIZE * 100

    def test_no_sampling_time(self, cell):
        assert cell.context.sampling_time == 0.0

    def test_dense_time_positive(self, cell):
        assert cell.context.dense_time > 0

    def test_model_recorded(self, cell):
        assert cell.model == "dlrm"
        assert cell.dataset_key == "syn-a"

    def test_dcn_costs_more(self):
        dlrm = dlr_cell(server_c(), "syn-a", "dlrm").context.dense_time
        dcn = dlr_cell(server_c(), "syn-a", "dcn").context.dense_time
        assert dcn > dlrm
