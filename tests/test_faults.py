"""Fault model, degraded platform, injector, and degraded-mode extraction."""

import numpy as np
import pytest

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.extractor import FactoredExtractor
from repro.core.policy import hot_replicate_warm_partition_policy, partition_policy
from repro.faults import (
    CORRUPT_SOURCE_BASE,
    DegradedPlatform,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    HealthView,
    degraded_platform,
    reroute_demand,
)
from repro.hardware.platform import HOST, server_a, server_b
from repro.obs import MetricsRegistry, use_registry
from repro.sim.engine import simulate_batch
from repro.sim.event_sim import simulate_factored_event_driven
from repro.sim.mechanisms import GpuDemand

N, D = 2000, 8


class TestFaultSpec:
    def test_active_window(self):
        spec = FaultSpec(FaultKind.GPU_FAILURE, onset=2.0, duration=3.0, gpu=1)
        assert not spec.active_at(1.9)
        assert spec.active_at(2.0)
        assert spec.active_at(4.9)
        assert not spec.active_at(5.0)
        assert spec.clears_at == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.GPU_FAILURE)  # needs a gpu
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.LINK_PARTITION)  # needs a link
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.LINK_PARTITION, link=(1, 1))
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.HOST_STALL, severity=0.0)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.HOST_STALL, duration=0.0)


class TestFaultPlanHealth:
    def test_empty_plan_is_healthy(self):
        assert FaultPlan().health_at(0.0).healthy

    def test_gpu_failure_flattens(self):
        plan = FaultPlan(
            faults=(FaultSpec(FaultKind.GPU_FAILURE, onset=1.0, duration=2.0, gpu=2),)
        )
        assert plan.health_at(0.5).healthy
        health = plan.health_at(1.5)
        assert not health.gpu_ok(2)
        assert health.link_factor(0, 2) == 0.0
        assert plan.health_at(3.0).healthy

    def test_link_faults_compose_via_min(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(FaultKind.LINK_DEGRADATION, severity=0.5, link=(0, 1)),
                FaultSpec(FaultKind.LINK_DEGRADATION, severity=0.8, link=(1, 0)),
            )
        )
        health = plan.health_at(0.0)
        # Symmetric application; overlapping factors take the minimum.
        assert health.link_factor(0, 1) == pytest.approx(0.2)
        assert health.link_factor(1, 0) == pytest.approx(0.2)
        assert health.link_factor(0, 2) == 1.0

    def test_host_never_fully_partitions(self):
        plan = FaultPlan(faults=(FaultSpec(FaultKind.HOST_STALL, severity=1.0),))
        health = plan.health_at(0.0)
        assert 0 < health.host_factor < 1
        assert health.source_usable(0, HOST)

    def test_downed_gpu_still_reaches_host(self):
        # The replacement worker serves the dead GPU's batch from DRAM.
        plan = FaultPlan(faults=(FaultSpec(FaultKind.GPU_FAILURE, gpu=0),))
        assert plan.health_at(0.0).link_factor(0, HOST) == 1.0

    def test_last_clear_time(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(FaultKind.HOST_STALL, onset=1.0, duration=2.0, severity=0.5),
                FaultSpec(FaultKind.GPU_FAILURE, onset=2.0, duration=5.0, gpu=0),
            )
        )
        assert plan.last_clear_time() == 7.0


class TestDegradedPlatform:
    def test_healthy_view_is_identity(self):
        platform = server_a()
        assert degraded_platform(platform, HealthView()) is platform

    def test_bandwidth_scales_with_link_factor(self):
        platform = server_a()
        health = HealthView(link_factors=(((0, 1), 0.5),))
        degraded = degraded_platform(platform, health)
        assert degraded.bandwidth(0, 1) == pytest.approx(
            0.5 * platform.bandwidth(0, 1)
        )
        assert degraded.bandwidth(0, 2) == platform.bandwidth(0, 2)
        assert degraded.tolerance(0, 1) <= platform.tolerance(0, 1)

    def test_down_gpu_vanishes_from_sources(self):
        platform = server_a()
        health = HealthView(down_gpus=frozenset({1}))
        degraded = degraded_platform(platform, health)
        assert 1 not in degraded.sources_for(0)
        assert not degraded.is_connected(0, 1)
        assert degraded.cost_per_byte(0, 1) == float("inf")

    def test_delegates_structure(self):
        degraded = DegradedPlatform(server_a(), HealthView(down_gpus=frozenset({1})))
        assert degraded.num_gpus == 4
        assert degraded.gpu.num_cores == server_a().gpu.num_cores

    def test_nested_wrap_unwraps_base(self):
        platform = server_a()
        once = degraded_platform(platform, HealthView(down_gpus=frozenset({1})))
        twice = degraded_platform(once, HealthView(down_gpus=frozenset({2})))
        assert twice.base is platform
        assert 1 in twice.sources_for(0)  # only the new view applies


class TestRerouteDemand:
    def test_dead_source_volume_moves_to_host(self):
        platform = server_a()
        demand = GpuDemand(dst=0, volumes={0: 100.0, 1: 50.0, HOST: 10.0})
        health = HealthView(down_gpus=frozenset({1}))
        rerouted = reroute_demand(demand, platform, health)
        assert 1 not in rerouted.volumes
        assert rerouted.volumes[HOST] == pytest.approx(60.0)
        assert rerouted.volumes[0] == pytest.approx(100.0)

    def test_downed_dst_loses_local_copies(self):
        platform = server_a()
        demand = GpuDemand(dst=1, volumes={1: 100.0, 0: 20.0})
        health = HealthView(down_gpus=frozenset({1}))
        rerouted = reroute_demand(demand, platform, health)
        assert rerouted.volumes == {HOST: pytest.approx(120.0)}


class TestInjector:
    def test_corrupt_slot_realized_once(self, platform_a, small_table, skewed_hotness):
        placement = partition_policy(skewed_hotness, 200, 4)
        cache = MultiGpuEmbeddingCache(platform_a, small_table, placement)
        plan = FaultPlan(
            faults=(
                FaultSpec(FaultKind.CORRUPT_SLOT, onset=1.0, severity=0.1, gpu=1),
            ),
            seed=3,
        )
        injector = FaultInjector(plan, cache=cache)
        reg = MetricsRegistry("t")
        with use_registry(reg):
            injector.advance(0.0)
            before = cache.source_map.copy()
            assert np.array_equal(cache.source_map, before)
            injector.advance(1.0)
            corrupted = int(np.sum(cache.source_map >= CORRUPT_SOURCE_BASE))
            assert corrupted > 0
            poisoned = cache.source_map.copy()
            injector.advance(1.5)  # one-shot: advancing again changes nothing
            assert np.array_equal(cache.source_map, poisoned)
        assert reg.value("faults.corrupted_slots") == corrupted

    def test_corruption_is_deterministic(self, platform_a, small_table, skewed_hotness):
        placement = partition_policy(skewed_hotness, 200, 4)
        maps = []
        for _ in range(2):
            cache = MultiGpuEmbeddingCache(platform_a, small_table, placement)
            plan = FaultPlan(
                faults=(
                    FaultSpec(FaultKind.CORRUPT_SLOT, severity=0.1, gpu=2, seed=5),
                ),
                seed=9,
            )
            FaultInjector(plan, cache=cache).advance(0.0)
            maps.append(cache.source_map.copy())
        assert np.array_equal(maps[0], maps[1])


class TestSimulatorsUnderFaults:
    def test_simulate_batch_prices_gpu_failure(self):
        platform = server_a()
        demands = [
            GpuDemand(dst=i, volumes={i: 1e6, (i + 1) % 4: 5e5}) for i in range(4)
        ]
        plan = FaultPlan(faults=(FaultSpec(FaultKind.GPU_FAILURE, gpu=1),))
        healthy = simulate_batch(platform, demands)
        faulted = simulate_batch(platform, demands, faults=plan, now=0.0)
        assert faulted.time > healthy.time  # host path is slower
        cleared = simulate_batch(platform, demands, faults=plan, now=plan.last_clear_time())
        assert cleared.time == pytest.approx(healthy.time)

    def test_event_sim_accepts_fault_plan(self):
        platform = server_a()
        demand = GpuDemand(dst=0, volumes={0: 2e6, 1: 1e6})
        plan = FaultPlan(
            faults=(FaultSpec(FaultKind.LINK_PARTITION, link=(0, 1)),)
        )
        healthy = simulate_factored_event_driven(platform, demand)
        faulted = simulate_factored_event_driven(platform, demand, faults=plan)
        assert faulted.total_time > healthy.total_time

    def test_unconnected_pair_still_rejected_when_healthy(self):
        platform = server_b()  # DGX-1: (0, 5) not NVLink-connected
        bad = GpuDemand(dst=0, volumes={5: 1e6})
        with pytest.raises(ValueError):
            simulate_batch(platform, [bad])


@pytest.mark.faults
class TestDegradedExtractionAcceptance:
    """ISSUE acceptance: GPU failure mid-run, the batch loop completes."""

    def test_gpu_failure_midrun_reroutes_and_recovers(self, rng):
        platform = server_a()
        table = rng.standard_normal((N, D)).astype(np.float32)
        hotness = np.sort(rng.pareto(1.2, N) + 1e-6)[::-1]
        placement = hot_replicate_warm_partition_policy(hotness, 300, 4, 0.5)
        cache = MultiGpuEmbeddingCache(platform, table, placement)
        plan = FaultPlan(
            faults=(FaultSpec(FaultKind.GPU_FAILURE, onset=3.0, duration=4.0, gpu=1),)
        )
        injector = FaultInjector(plan, cache=cache)
        extractor = FactoredExtractor(cache, injector=injector)

        reg = MetricsRegistry("t")
        times = []
        with use_registry(reg):
            for t in range(10):
                injector.advance(float(t))
                keys = [rng.integers(0, N, size=256) for _ in range(4)]
                # No exception escapes the extractor during the outage.
                values, report = extractor.extract(keys, now=float(t))
                for got, want in zip(values, keys):
                    assert np.array_equal(got, table[want])
                times.append(report.time)

        rerouted = sum(
            s.value
            for s in reg.series()
            if s.kind == "counter" and s.name == "faults.rerouted_keys"
        )
        assert rerouted > 0
        # Degraded while down, recovered after the fault clears.
        baseline = np.mean(times[:3])
        during = np.mean(times[3:7])
        after = np.mean(times[7:])
        assert during > baseline
        assert after == pytest.approx(baseline, rel=0.05)

    def test_corrupt_slots_reroute_to_host(self, rng):
        platform = server_a()
        table = rng.standard_normal((N, D)).astype(np.float32)
        hotness = np.sort(rng.pareto(1.2, N) + 1e-6)[::-1]
        placement = partition_policy(hotness, 300, 4)
        cache = MultiGpuEmbeddingCache(platform, table, placement)
        plan = FaultPlan(
            faults=(FaultSpec(FaultKind.CORRUPT_SLOT, severity=0.2, gpu=2),)
        )
        injector = FaultInjector(plan, cache=cache)
        extractor = FactoredExtractor(cache, injector=injector)
        reg = MetricsRegistry("t")
        with use_registry(reg):
            injector.advance(0.0)
            keys = [np.arange(N // 2) for _ in range(4)]
            values, _ = extractor.extract(keys, now=0.0)
            for got, want in zip(values, keys):
                assert np.array_equal(got, table[want])
            assert reg.value("faults.corrupt_reads") > 0


class TestDegradedPlatformPassthrough:
    """Every public attribute of the wrapped platform stays reachable."""

    #: behaviour DegradedPlatform intentionally overrides (fault-scaled).
    OVERRIDDEN = {
        "bandwidth",
        "peak_pair_bandwidth",
        "tolerance",
        "cost_per_byte",
        "is_connected",
        "sources_for",
    }

    @pytest.mark.parametrize("factory", [server_a, server_b])
    def test_every_public_attribute_resolves(self, factory):
        base = factory()
        degraded = DegradedPlatform(base, HealthView(down_gpus=frozenset({1})))
        public = [n for n in dir(base) if not n.startswith("_")]
        assert public, "platform should expose a public surface"
        for name in public:
            got = getattr(degraded, name)  # must never raise
            if name in self.OVERRIDDEN:
                continue
            want = getattr(base, name)
            if callable(want):
                # delegated bound methods are the base's own
                assert got == want, name
            else:
                assert got is want or got == want, name

    def test_wrapper_extras_do_not_shadow(self):
        base = server_a()
        degraded = DegradedPlatform(base, HealthView(host_factor=0.5))
        assert degraded.base is base
        assert degraded.health.host_factor == 0.5
        # a delegated method is actually usable, not just resolvable
        assert degraded.sources_for(0)
        assert degraded.gpu_ids == base.gpu_ids

    def test_unknown_attribute_still_raises(self):
        degraded = DegradedPlatform(server_a(), HealthView(host_factor=0.5))
        with pytest.raises(AttributeError):
            degraded.no_such_attribute
