"""Figure 4: message vs naive peer vs UGache extraction time (DLR)."""

from repro.bench.experiments import fig4_mechanism_motivation
from repro.bench.plotting import bar_chart


def bench_fig04_mechanism_motivation(run_experiment, capsys):
    result = run_experiment(fig4_mechanism_motivation)
    with capsys.disabled():
        for row in result.rows:
            print(f"\n[{row['platform']} / {row['dataset']}]")
            print(bar_chart(
                {
                    "message": row["message_ms"],
                    "peer": row["peer_ms"],
                    "ugache": row["ugache_ms"],
                },
                unit=" ms",
            ))
    for row in result.rows:
        # Peer beats message (zero-copy saves the buffering passes) and
        # UGache beats both (§3.2 / Figure 4).
        assert row["peer_ms"] < row["message_ms"]
        assert row["ugache_ms"] < row["peer_ms"]
