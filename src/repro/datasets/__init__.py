"""Dataset stand-ins for Table 3, scaled for a laptop-class substrate."""

from repro.datasets.dlr_datasets import DLR_SPECS, DlrDatasetSpec, dlr_spec
from repro.datasets.gnn_datasets import (
    GNN_SPECS,
    GnnDataset,
    GnnDatasetSpec,
    build_gnn_dataset,
)
from repro.datasets.registry import (
    USABLE_GPU_FRACTION,
    DatasetSummary,
    all_dataset_summaries,
    cache_ratio_for,
    capacity_entries_for,
)

__all__ = [
    "DLR_SPECS",
    "DlrDatasetSpec",
    "dlr_spec",
    "GNN_SPECS",
    "GnnDataset",
    "GnnDatasetSpec",
    "build_gnn_dataset",
    "USABLE_GPU_FRACTION",
    "DatasetSummary",
    "all_dataset_summaries",
    "cache_ratio_for",
    "capacity_entries_for",
]
