"""Regenerate the golden lookahead-prefetch fixture.

``prefetch_golden.json`` pins what the lookahead prefetch stage (the
oracle cacher) produces on seeded workloads: a full soak report with
``lookahead=4`` on the skewed quick trace, its ``lookahead=0`` anchor
(which must stay byte-identical to a runtime with no prefetcher at all),
the oracle cacher's exact staging decisions on a scripted window, and
the discrete event-sim pricing of a prefetched extraction.

Only regenerate when an *intentional* behaviour change lands:

    PYTHONPATH=src python tests/golden/generate_prefetch_golden.py
"""

from __future__ import annotations

import json
import math
import pathlib

import numpy as np

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.policy import hot_replicate_warm_partition_policy
from repro.core.prefetch import OracleCacher, PrefetchConfig
from repro.hardware import server_a
from repro.hardware.platform import HOST
from repro.serve import SoakConfig, run_soak
from repro.sim.event_sim import simulate_prefetched_extraction
from repro.sim.mechanisms import GpuDemand
from repro.utils.stats import zipf_pmf

GOLDEN_PATH = pathlib.Path(__file__).parent / "prefetch_golden.json"

N, D = 2000, 8


def _soak_record(**overrides) -> dict:
    cfg = SoakConfig.quick(
        scenario="steady", load=0.8, requests_per_gpu=60, **overrides
    )
    return run_soak(cfg).to_dict()


def _cacher_tape() -> dict:
    """The oracle's exact staging decisions on a scripted window."""
    rng = np.random.default_rng(21)
    platform = server_a()
    table = rng.standard_normal((N, D)).astype(np.float32)
    hotness = zipf_pmf(N, 1.2) * 1000.0
    placement = hot_replicate_warm_partition_policy(
        hotness, 250, platform.num_gpus, 0.5
    )
    cache = MultiGpuEmbeddingCache(platform, table, placement)
    # capacity below the window's host-miss count, so the tape pins both
    # the prefix admission and the deferred-keys accounting.
    cacher = OracleCacher(
        cache, PrefetchConfig(lookahead=2, capacity_entries=48)
    )
    batches = [rng.integers(0, N, size=96) for _ in range(4)]
    for keys in batches:
        cacher.announce(0, keys)
    steps = []
    for keys in batches:
        outcome = cacher.prefetch(0, idle_seconds=math.inf)
        host_keys = keys[cache.source_map[0][keys] == HOST]
        hits = int(cacher.stage_hits(0, host_keys).sum())
        cacher.advance(0)
        steps.append(
            {
                "staged_keys": outcome.staged_keys,
                "deferred_keys": outcome.deferred_keys,
                "host_keys": len(host_keys),
                "hits": hits,
                "occupancy_after_advance": cacher.buffer(0).occupancy,
            }
        )
    cacher.finalize()
    return {
        "steps": steps,
        "staged_total": cacher.staged_keys_total,
        "hits_total": cacher.hits_total,
        "hit_rate": cacher.hit_rate,
        "wasted_bytes": cacher.wasted_bytes_total,
    }


def _event_sim_record() -> dict:
    platform = server_a()
    demand = GpuDemand(
        dst=0, volumes={HOST: 4 * 2**20, 0: 2**20, 1: 2**20}
    )
    result = simulate_prefetched_extraction(
        platform, demand, staged_bytes=2 * 2**20, idle_seconds=1e-4
    )
    return {
        "total_time": result.total_time,
        "baseline_time": result.baseline_time,
        "prefetch_time": result.prefetch_time,
        "overlapped_seconds": result.overlapped_seconds,
        "critical_seconds": result.critical_seconds,
        "shifted_time": result.shifted_time,
        "speedup": result.speedup,
    }


def build() -> dict:
    return {
        "version": 1,
        "cacher_tape": _cacher_tape(),
        "event_sim": _event_sim_record(),
        "soak_off": _soak_record(),
        "soak_lookahead": _soak_record(lookahead=4),
    }


def main() -> None:
    doc = build()
    GOLDEN_PATH.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({GOLDEN_PATH.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
