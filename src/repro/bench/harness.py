"""Benchmark result containers and plain-text table rendering.

Every figure/table driver in :mod:`repro.bench.experiments` returns an
:class:`ExperimentResult` — a titled list of uniform row dicts — which the
``benchmarks/`` scripts render with :func:`render_table` so each bench
prints the same rows/series the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.utils.stats import geometric_mean


@dataclass
class ExperimentResult:
    """A reproduced table/figure: title + uniform rows (+ free-form notes)."""

    experiment: str
    title: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, **row: Any) -> None:
        self.rows.append(row)

    def columns(self) -> list[str]:
        cols: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
        return cols

    def series(self, key: str) -> list[Any]:
        return [row.get(key) for row in self.rows]


def _format_cell(value: Any) -> str:
    if value is None:
        return "✗"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(result: ExperimentResult) -> str:
    """Render an :class:`ExperimentResult` as an aligned text table."""
    lines = [f"== {result.experiment}: {result.title} =="]
    cols = result.columns()
    if cols:
        cells = [[_format_cell(row.get(c)) for c in cols] for row in result.rows]
        widths = [
            max(len(c), *(len(r[i]) for r in cells)) if cells else len(c)
            for i, c in enumerate(cols)
        ]
        lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row_cells in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row_cells, widths)))
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def speedup_summary(
    rows: list[dict[str, Any]], baseline_key: str, target_key: str
) -> dict[str, float]:
    """Geometric-mean and max speedup of target over baseline across rows.

    Rows with a missing side (unsupported configuration) are skipped, as
    the paper's averages do.
    """
    ratios = []
    for row in rows:
        base = row.get(baseline_key)
        target = row.get(target_key)
        if base is None or target is None or target <= 0:
            continue
        ratios.append(base / target)
    if not ratios:
        return {"geomean": float("nan"), "max": float("nan"), "count": 0}
    return {
        "geomean": geometric_mean(ratios),
        "max": max(ratios),
        "count": len(ratios),
    }
