"""The backing-tier chain: per-tier stores below the GPU caches.

A :class:`TierChain` materializes a platform's
:attr:`~repro.hardware.platform.Platform.tiers` into one store per tier
(the same slot-arena + offset-map shape as a GPU's
:class:`~repro.core.filler.GpuCacheStore`) and maintains the **home map**
— for every embedding entry, the one backing tier that holds its
authoritative copy.  This is the parameter-server shape of HugeCTR's
inference HPS: tables far larger than host DRAM, with the hot head
resident in DRAM and the cold tail sunk to CXL/SSD.

Invariants (checked by :meth:`TierChain.verify`, property-tested by the
tier invariant suite):

* **partition** — every entry is resident in *exactly one* tier, and the
  home map agrees with store residency;
* **capacity** — no tier holds more entries than its byte capacity
  allows;
* **integrity** — a move between tiers never loses bytes: the row's
  checksum (:mod:`repro.core.checksum`) is verified across every
  demotion/promotion, and each store's rows stay bit-identical to the
  ground-truth table.

Placement is a hotness-ranked waterfall (:func:`assign_backing_tiers`):
the hottest entries land on the fastest tier until it fills, the next
band on the next tier, and the terminal tier absorbs the remainder — it
must be large enough to, or the chain refuses to build
(:class:`TierCapacityError`).
"""

from __future__ import annotations

import numpy as np

from repro.core.checksum import row_checksums
from repro.core.filler import GpuCacheStore, fill_gpu
from repro.hardware.platform import SOURCE_DTYPE, MemoryTier

__all__ = [
    "TierCapacityError",
    "TierIntegrityError",
    "TierChain",
    "assign_backing_tiers",
    "tier_capacity_entries",
]


class TierCapacityError(ValueError):
    """The chain cannot hold the entry universe (terminal tier too small)."""


class TierIntegrityError(RuntimeError):
    """A tier move or verify found corrupted or lost bytes."""


def tier_capacity_entries(
    tier: MemoryTier, entry_bytes: int, num_entries: int
) -> int:
    """Entries ``tier`` can hold, bounded by the entry universe."""
    if entry_bytes <= 0:
        raise ValueError("entry size must be positive")
    return int(min(tier.capacity_bytes // entry_bytes, num_entries))


def assign_backing_tiers(
    tiers: tuple[MemoryTier, ...],
    num_entries: int,
    entry_bytes: int,
    hotness: np.ndarray | None = None,
) -> np.ndarray:
    """Hotness-ranked waterfall: entry → backing source id (-1, -2, …).

    The hottest entries go to tier 0 until its capacity fills, the next
    band to tier 1, and so on; without ``hotness`` the assignment is by
    entry id (a deterministic stand-in).  Raises
    :class:`TierCapacityError` when the chain's total capacity cannot
    hold the universe — the terminal tier must absorb the remainder.
    """
    caps = [tier_capacity_entries(t, entry_bytes, num_entries) for t in tiers]
    if sum(caps) < num_entries:
        raise TierCapacityError(
            f"tier chain holds {sum(caps)} entries but the table has "
            f"{num_entries}; grow the terminal tier"
        )
    if hotness is None:
        order = np.arange(num_entries, dtype=np.int64)
    else:
        hotness = np.asarray(hotness, dtype=np.float64)
        if hotness.shape != (num_entries,):
            raise ValueError("hotness length must match the entry universe")
        # Stable sort so equal-hotness entries keep id order (determinism).
        order = np.argsort(-hotness, kind="stable")
    home = np.empty(num_entries, dtype=SOURCE_DTYPE)
    start = 0
    for k, cap in enumerate(caps):
        if start >= num_entries:
            break
        take = min(cap, num_entries - start)
        home[order[start : start + take]] = -(k + 1)
        start += take
    return home


class TierChain:
    """Per-tier backing stores + the entry → home-tier map.

    Thread-safety: the chain has no lock of its own — the owning
    :class:`~repro.core.cache.MultiGpuEmbeddingCache` serializes every
    mutation under its writer lock, exactly as it does for the GPU
    stores.
    """

    def __init__(
        self,
        tiers: tuple[MemoryTier, ...],
        table: np.ndarray,
        hotness: np.ndarray | None = None,
    ) -> None:
        if table.ndim != 2:
            raise ValueError("embedding table must be 2-D (entries × dim)")
        if not tiers:
            raise ValueError("a tier chain needs at least one tier")
        self._tiers = tuple(tiers)
        self._table = table
        n, _ = table.shape
        entry_bytes = table.shape[1] * table.itemsize
        self._capacities = [
            tier_capacity_entries(t, entry_bytes, n) for t in tiers
        ]
        self._home = assign_backing_tiers(self._tiers, n, entry_bytes, hotness)
        self._stores: list[GpuCacheStore] = []
        for k in range(len(tiers)):
            src = -(k + 1)
            assigned = np.flatnonzero(self._home == src)
            self._stores.append(
                fill_gpu(
                    src,
                    table,
                    assigned,
                    capacity_entries=max(self._capacities[k], 1),
                )
            )
        #: bytes moved between tiers over the chain's lifetime.
        self.moved_bytes = 0
        self.demotions = 0
        self.promotions = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def tiers(self) -> tuple[MemoryTier, ...]:
        return self._tiers

    @property
    def num_tiers(self) -> int:
        return len(self._tiers)

    @property
    def num_entries(self) -> int:
        return self._table.shape[0]

    @property
    def entry_bytes(self) -> int:
        return self._table.shape[1] * self._table.itemsize

    @property
    def home(self) -> np.ndarray:
        """Entry → backing source id; the resolve stage's fallback column."""
        return self._home

    @property
    def backing_ids(self) -> list[int]:
        return [-(k + 1) for k in range(len(self._tiers))]

    def capacity_entries(self, src: int) -> int:
        return self._capacities[-src - 1]

    def store(self, src: int) -> GpuCacheStore:
        """The store behind backing source ``src``."""
        k = -src - 1
        if not 0 <= k < len(self._stores):
            raise ValueError(f"source {src} is not a tier of this chain")
        return self._stores[k]

    def resident_count(self, src: int) -> int:
        return int((self._home == src).sum())

    def shares(self) -> dict[int, float]:
        """Fraction of the entry universe homed per tier (hedge pricing)."""
        n = self.num_entries
        if n == 0:
            return {src: 0.0 for src in self.backing_ids}
        return {
            src: self.resident_count(src) / n for src in self.backing_ids
        }

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def gather(self, src: int, keys: np.ndarray) -> np.ndarray:
        """Rows of ``keys`` from tier ``src``; every key must be homed there.

        Raises :class:`TierIntegrityError` on a stale route — the
        caller's home map said ``src`` but the tier store disagrees.
        """
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        store = self.store(src)
        slots = store.offset_of[keys]
        if (slots < 0).any():
            missing = keys[slots < 0][:5]
            raise TierIntegrityError(
                f"tier {self._tiers[-src - 1].name}: entries {missing} routed "
                "here but not resident"
            )
        return store.data[slots]

    def gather_home(self, keys: np.ndarray) -> np.ndarray:
        """Rows of ``keys``, each read from its home tier."""
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        out = np.empty((len(keys), self._table.shape[1]), dtype=self._table.dtype)
        homes = self._home[keys]
        for src in self.backing_ids:
            mask = homes == src
            if mask.any():
                out[mask] = self.gather(src, keys[mask])
        return out

    # ------------------------------------------------------------------
    # Demotion / promotion
    # ------------------------------------------------------------------
    def move(self, entries: np.ndarray, dst_src: int) -> int:
        """Move ``entries`` to tier ``dst_src``, verifying no byte is lost.

        Each row's checksum is captured from the source store before the
        move and compared after insertion into the destination — a
        mismatch raises :class:`TierIntegrityError` with the chain left
        consistent (the failing entry is re-checked before any eviction).
        Entries already homed on ``dst_src`` are skipped.  Returns how
        many entries moved.
        """
        entries = np.unique(np.ascontiguousarray(entries, dtype=np.int64))
        if entries.size and (
            entries.min() < 0 or entries.max() >= self.num_entries
        ):
            raise KeyError("tier move entry out of range")
        dst_store = self.store(dst_src)
        movers = entries[self._home[entries] != dst_src]
        if len(movers) == 0:
            return 0
        free = self.capacity_entries(dst_src) - int(
            (self._home == dst_src).sum()
        )
        if len(movers) > free:
            raise TierCapacityError(
                f"tier {self._tiers[-dst_src - 1].name} has {free} free "
                f"entries; cannot take {len(movers)}"
            )
        dst_cost = self._tiers[-dst_src - 1].cost_per_byte
        for entry in movers:
            e = int(entry)
            src = int(self._home[e])
            src_store = self.store(src)
            slot = int(src_store.offset_of[e])
            row = src_store.data[slot].copy()
            want = src_store.checksums[slot]
            src_store.evict(e)
            new_slot = dst_store.insert(e, row)
            if dst_store.checksums[new_slot] != want:
                raise TierIntegrityError(
                    f"entry {e} lost bytes moving "
                    f"{self._tiers[-src - 1].name} → "
                    f"{self._tiers[-dst_src - 1].name}"
                )
            self._home[e] = dst_src
            if self._tiers[-src - 1].cost_per_byte < dst_cost:
                self.demotions += 1
            else:
                self.promotions += 1
        self.moved_bytes += len(movers) * self.entry_bytes
        return len(movers)

    def rebalance(self, hotness: np.ndarray) -> int:
        """Re-run the hotness waterfall and apply the resulting moves.

        Cold rows sink, hot rows rise; every executed transfer passes
        the same checksum gate as :meth:`move`.  Tiers full in both the
        old and the new assignment can form displacement *cycles* (a row
        must enter a tier another row has to leave first, and vice
        versa); those are broken by lifting one blocked row at a time
        into a transit buffer — its bytes are checksummed across the
        lift exactly as across a direct move.  Returns entries moved.
        """
        target = assign_backing_tiers(
            self._tiers, self.num_entries, self.entry_bytes, hotness
        )
        moved = 0
        #: rows in transit: entry → (row copy, checksum, source tier id).
        held: dict[int, tuple[np.ndarray, np.uint64, int]] = {}

        def free_slots(src: int) -> int:
            return self.capacity_entries(src) - len(
                self.store(src).cached_entries()
            )

        def lift(e: int) -> tuple[np.ndarray, np.uint64, int]:
            src = int(self._home[e])
            store = self.store(src)
            slot = int(store.offset_of[e])
            row = store.data[slot].copy()
            want = store.checksums[slot]
            store.evict(e)
            return row, want, src

        def land(e: int, row: np.ndarray, want, src: int) -> None:
            nonlocal moved
            dst = int(target[e])
            dst_store = self.store(dst)
            slot = dst_store.insert(e, row)
            if dst_store.checksums[slot] != want:
                raise TierIntegrityError(
                    f"entry {e} lost bytes moving "
                    f"{self._tiers[-src - 1].name} → "
                    f"{self._tiers[-dst - 1].name}"
                )
            self._home[e] = dst
            src_cost = self._tiers[-src - 1].cost_per_byte
            if src_cost < self._tiers[-dst - 1].cost_per_byte:
                self.demotions += 1
            else:
                self.promotions += 1
            self.moved_bytes += self.entry_bytes
            moved += 1

        while True:
            progress = True
            while progress:
                progress = False
                # land transiting rows whose destination opened up
                for e in list(held):
                    if free_slots(int(target[e])) > 0:
                        row, want, src = held.pop(e)
                        land(e, row, want, src)
                        progress = True
                # direct moves, deepest destination first (demote-first:
                # sinking cold rows frees the fast tiers for the risers)
                for dst in reversed(self.backing_ids):
                    room = free_slots(dst)
                    if room <= 0:
                        continue
                    movers = np.flatnonzero(
                        (target == dst) & (self._home != dst)
                    )
                    for e in movers[: room]:
                        e = int(e)
                        if e in held:
                            continue
                        land(e, *lift(e))
                        progress = True
            blocked = [
                int(e)
                for e in np.flatnonzero(target != self._home)
                if int(e) not in held
            ]
            if not blocked:
                if held:  # unreachable for a feasible target; defend anyway
                    raise TierCapacityError(
                        "rebalance cannot place rows still in transit"
                    )
                return moved
            # Every blocked row's destination is full.  A feasible target
            # guarantees that destination holds at least one row that
            # itself needs to move — lift it into transit to break the
            # cycle.
            dst = int(target[blocked[0]])
            stuck = [
                int(e)
                for e in self.store(dst).cached_entries()
                if int(target[int(e)]) != dst and int(e) not in held
            ]
            if not stuck:
                raise TierCapacityError(
                    f"tier {self._tiers[-dst - 1].name} is full of "
                    "correctly homed rows but the target overfills it"
                )
            held[stuck[0]] = lift(stuck[0])

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def verify(self) -> list[str]:
        """Check partition / capacity / integrity; returns violations."""
        problems: list[str] = []
        resident = np.zeros(self.num_entries, dtype=np.int64)
        for k, store in enumerate(self._stores):
            src = -(k + 1)
            name = self._tiers[k].name
            cached = store.cached_entries()
            resident[cached] += 1
            if len(cached) > self._capacities[k]:
                problems.append(
                    f"tier {name}: {len(cached)} resident entries exceed "
                    f"capacity {self._capacities[k]}"
                )
            homed = np.flatnonzero(self._home == src)
            if not np.array_equal(homed, cached):
                problems.append(
                    f"tier {name}: home map and store residency disagree"
                )
            if len(cached):
                rows = store.data[store.offset_of[cached]]
                if not np.array_equal(rows, self._table[cached]):
                    problems.append(
                        f"tier {name}: resident rows diverge from the table"
                    )
                want = row_checksums(self._table[cached])
                if not np.array_equal(
                    store.checksums[store.offset_of[cached]], want
                ):
                    problems.append(
                        f"tier {name}: stored checksums diverge from the table"
                    )
        if (resident != 1).any():
            off = int((resident != 1).sum())
            problems.append(
                f"tier chain: {off} entries not resident in exactly one tier"
            )
        return problems
