"""Congestion fixed point for unorganized extraction (§5.1-5.2)."""

import numpy as np
import pytest

from repro.sim.congestion import CongestionModel, solve_congested_extraction


def _solve(volumes, peaks, cores=100, per_core=1e9, model=None, pressure=None):
    return solve_congested_extraction(
        volumes=volumes,
        peak_bandwidth=peaks,
        per_core_bandwidth=per_core,
        num_cores=cores,
        model=model,
        collision_pressure=pressure,
    )


class TestSingleSource:
    def test_local_only_runs_at_full_bandwidth(self):
        # 100 cores × 1 GB/s, local peak 100 GB/s → 1 GB in 10 ms.
        out = _solve({0: 1e9}, {0: 100e9})
        assert out.total_time == pytest.approx(0.01)

    def test_slow_source_saturates_with_degradation(self):
        # All cores hammer a 10 GB/s link: heavy oversubscription halves
        # delivered bandwidth (the 50% clamp).
        out = _solve({1: 1e9}, {1: 10e9})
        assert out.total_time == pytest.approx(1e9 / 5e9, rel=0.05)

    def test_no_volume_no_time(self):
        out = _solve({}, {})
        assert out.total_time == 0.0
        assert out.core_seconds == {}


class TestMixedSources:
    def test_slow_link_inflates_total(self):
        fast_only = _solve({0: 1e9}, {0: 100e9})
        mixed = _solve({0: 1e9, 9: 0.2e9}, {0: 100e9, 9: 5e9})
        assert mixed.total_time > fast_only.total_time

    def test_occupancy_sums_to_cores(self):
        out = _solve({0: 1e9, 1: 1e9, 9: 0.5e9}, {0: 100e9, 1: 30e9, 9: 5e9})
        assert sum(out.cores_by_source.values()) == pytest.approx(100)

    def test_slow_source_captures_cores(self):
        # Equal volumes, very different speeds: the slow link holds more
        # SMs at any instant — the Figure 7 stall.
        out = _solve({0: 1e9, 9: 1e9}, {0: 100e9, 9: 5e9})
        assert out.cores_by_source[9] > out.cores_by_source[0]

    def test_total_time_is_work_over_cores(self):
        out = _solve({0: 2e9, 9: 0.3e9}, {0: 100e9, 9: 5e9})
        work = sum(out.core_seconds.values())
        assert out.total_time == pytest.approx(work / 100)


class TestDegradationModel:
    def test_beta_zero_is_work_conserving(self):
        model = CongestionModel(beta=0.0, switch_collision_beta=0.0)
        out = _solve({9: 1e9}, {9: 10e9}, model=model)
        # Without degradation a saturated link still delivers its peak.
        assert out.total_time == pytest.approx(0.1)

    def test_degradation_capped(self):
        model = CongestionModel(beta=100.0, max_degradation=0.5)
        out = _solve({9: 1e9}, {9: 10e9}, model=model)
        assert out.total_time <= 1e9 / 5e9 * 1.01

    def test_effective_bandwidth_below_tolerance_is_peak(self):
        model = CongestionModel()
        assert model.effective_bandwidth(10e9, cores=3, tolerance=10) == 10e9

    def test_effective_bandwidth_degrades_above_tolerance(self):
        model = CongestionModel(beta=1.0, max_degradation=0.1)
        degraded = model.effective_bandwidth(10e9, cores=20, tolerance=10)
        assert degraded == pytest.approx(5e9)

    def test_collision_pressure_slows_switch_sources(self):
        base = _solve({1: 1e9}, {1: 43e9})
        pressured = _solve({1: 1e9}, {1: 43e9}, pressure={1: 7.0})
        assert pressured.total_time > base.total_time

    def test_invalid_model_params(self):
        with pytest.raises(ValueError):
            CongestionModel(beta=-1)
        with pytest.raises(ValueError):
            CongestionModel(max_degradation=0)
        with pytest.raises(ValueError):
            CongestionModel(damping=0)


class TestValidation:
    def test_rejects_volume_without_bandwidth(self):
        with pytest.raises(ValueError):
            _solve({0: 1e9}, {0: 0.0})

    def test_rejects_bad_cores(self):
        with pytest.raises(ValueError):
            solve_congested_extraction({0: 1.0}, {0: 1e9}, 1e9, 0)

    def test_rejects_bad_per_core(self):
        with pytest.raises(ValueError):
            solve_congested_extraction({0: 1.0}, {0: 1e9}, 0, 10)

    def test_rejects_pressure_below_one(self):
        with pytest.raises(ValueError):
            _solve({0: 1e9}, {0: 1e9}, pressure={0: 0.5})


class TestConvergence:
    def test_fixed_point_is_stable(self):
        short = CongestionModel(iterations=30)
        long = CongestionModel(iterations=200)
        a = _solve({0: 1e9, 9: 0.4e9}, {0: 100e9, 9: 5e9}, model=short)
        b = _solve({0: 1e9, 9: 0.4e9}, {0: 100e9, 9: 5e9}, model=long)
        assert a.total_time == pytest.approx(b.total_time, rel=1e-3)

    def test_scale_invariance(self):
        # Doubling all volumes doubles the time.
        a = _solve({0: 1e9, 9: 0.2e9}, {0: 100e9, 9: 5e9})
        b = _solve({0: 2e9, 9: 0.4e9}, {0: 100e9, 9: 5e9})
        assert b.total_time == pytest.approx(2 * a.total_time, rel=1e-6)
