"""TensorFlow/Keras-style integration (§7.1): UGache as an embedding layer.

Mirrors the ``tf.keras.layers.Layer`` lifecycle — construct with config,
``build`` on first call, ``call`` for lookups, ``get_config`` for
serialization — over numpy arrays, since TensorFlow is unavailable
offline.  This is the surface the paper's DLR inference integration (HPS /
SOK plugin replacement) exposes.
"""

from __future__ import annotations

import numpy as np

from repro.core.embedding_layer import EmbeddingLayerConfig, UGacheEmbeddingLayer
from repro.hardware.platform import Platform


class UGacheKerasEmbedding:
    """Keras-style layer serving multi-table DLR lookups.

    Example::

        layer = UGacheKerasEmbedding(platform, cache_ratio=0.08)
        layer.build(weight, hotness)                # once, like Keras build()
        dense = layer(keys, device=0)               # call per batch
    """

    def __init__(
        self,
        platform: Platform,
        cache_ratio: float | None = None,
        capacity_entries: int | None = None,
        name: str = "ugache_embedding",
    ) -> None:
        self._platform = platform
        self._cache_ratio = cache_ratio
        self._capacity = capacity_entries
        self._name = name
        self._layer: UGacheEmbeddingLayer | None = None

    @property
    def built(self) -> bool:
        return self._layer is not None

    @property
    def name(self) -> str:
        return self._name

    def build(self, weight: np.ndarray, hotness: np.ndarray) -> None:
        """Materialize the cache (Keras calls this before first use)."""
        if self.built:
            raise RuntimeError(f"layer {self._name!r} is already built")
        self._layer = UGacheEmbeddingLayer(
            self._platform,
            weight,
            hotness,
            EmbeddingLayerConfig(
                cache_ratio=self._cache_ratio, capacity_entries=self._capacity
            ),
        )

    def call(self, keys: np.ndarray, device: int = 0) -> np.ndarray:
        if not self.built:
            raise RuntimeError(
                f"layer {self._name!r} must be built before it is called"
            )
        keys = np.asarray(keys)
        flat = keys.reshape(-1)
        values = self._layer.lookup(device, flat)
        return values.reshape(*keys.shape, self._layer.cache.dim)

    __call__ = call

    @property
    def layer(self) -> UGacheEmbeddingLayer:
        if not self.built:
            raise RuntimeError("layer not built yet")
        return self._layer

    def get_config(self) -> dict:
        """Keras-style config dict (for logging/serialization parity)."""
        return {
            "name": self._name,
            "platform": self._platform.name,
            "cache_ratio": self._cache_ratio,
            "capacity_entries": self._capacity,
        }
