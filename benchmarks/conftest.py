"""Shared helpers for the per-figure benchmark scripts.

Every benchmark runs one experiment driver exactly once under
pytest-benchmark (the drivers are deterministic, minutes-scale sweeps — not
microbenchmarks) and prints the reproduced table/figure rows uncaptured so
they land in ``bench_output.txt``.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ExperimentResult, render_table


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Run an experiment driver once, print its table, return its result."""

    def runner(driver, *args, **kwargs) -> ExperimentResult:
        result = benchmark.pedantic(
            driver, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(render_table(result))
        return result

    return runner
