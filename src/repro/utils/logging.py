"""Library logging: namespaced loggers with the standard null handler.

Follows library convention: ``repro`` never configures the root logger;
applications opt in (e.g. ``logging.basicConfig(level=logging.DEBUG)``)
and then see solver/refresher diagnostics.  :func:`enable_console_logging`
is a convenience for scripts and the CLI.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.<name>``)."""
    if not name:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> logging.Handler:
    """Attach a stderr handler to the ``repro`` namespace (idempotent).

    Returns the handler so callers can detach it again.
    """
    root = logging.getLogger(_ROOT_NAME)
    for handler in root.handlers:
        if getattr(handler, "_repro_console", False):
            root.setLevel(level)
            return handler
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
    )
    handler._repro_console = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level)
    return handler
