"""Figure 6 microbenchmark model: bandwidth vs participating cores."""

import pytest

from repro.hardware.bandwidth import achieved_bandwidth, tolerance_curves
from repro.hardware.platform import HOST


class TestAchievedBandwidth:
    def test_linear_before_plateau(self, platform_c):
        one = achieved_bandwidth(platform_c, 0, 0, 1)
        two = achieved_bandwidth(platform_c, 0, 0, 2)
        assert two == pytest.approx(2 * one)

    def test_local_plateau_is_hbm(self, platform_c):
        full = achieved_bandwidth(platform_c, 0, 0, platform_c.gpu.num_cores)
        assert full == pytest.approx(platform_c.gpu.local_bandwidth)

    def test_host_plateau_is_pcie(self, platform_a):
        full = achieved_bandwidth(platform_a, 0, HOST, 80)
        assert full == pytest.approx(platform_a.pcie_bandwidth)

    def test_extra_cores_add_nothing(self, platform_a):
        at_tol = achieved_bandwidth(platform_a, 0, HOST, platform_a.tolerance(0, HOST))
        beyond = achieved_bandwidth(platform_a, 0, HOST, 80)
        assert beyond == pytest.approx(at_tol, rel=0.25)

    def test_cores_clamped_to_gpu(self, platform_a):
        assert achieved_bandwidth(platform_a, 0, 0, 10_000) == pytest.approx(
            platform_a.gpu.local_bandwidth
        )

    def test_zero_cores_zero_bandwidth(self, platform_a):
        assert achieved_bandwidth(platform_a, 0, 1, 0) == 0.0

    def test_concurrent_readers_share_switch_outbound(self, platform_c):
        alone = achieved_bandwidth(platform_c, 0, 1, 108, concurrent_readers=1)
        shared = achieved_bandwidth(platform_c, 0, 1, 108, concurrent_readers=7)
        assert alone == pytest.approx(300e9)
        assert shared == pytest.approx(300e9 / 7)

    def test_concurrent_readers_ignored_on_hardwired(self, platform_a):
        alone = achieved_bandwidth(platform_a, 0, 1, 80, concurrent_readers=1)
        shared = achieved_bandwidth(platform_a, 0, 1, 80, concurrent_readers=3)
        assert alone == shared

    def test_rejects_negative_cores(self, platform_a):
        with pytest.raises(ValueError):
            achieved_bandwidth(platform_a, 0, 0, -1)

    def test_rejects_zero_readers(self, platform_c):
        with pytest.raises(ValueError):
            achieved_bandwidth(platform_c, 0, 1, 10, concurrent_readers=0)


class TestToleranceCurves:
    def test_includes_cpu_local_remote(self, platform_a):
        labels = [c.source_label for c in tolerance_curves(platform_a)]
        assert "CPU" in labels and "Local" in labels
        assert any(label.startswith("Remote") for label in labels)

    def test_cpu_saturates_before_local(self, platform_c):
        curves = {c.source_label: c for c in tolerance_curves(platform_c)}
        assert curves["CPU"].saturation_cores < curves["Local"].saturation_cores

    def test_curves_monotone(self, platform_a):
        for curve in tolerance_curves(platform_a):
            diffs = curve.bandwidth[1:] - curve.bandwidth[:-1]
            assert (diffs >= -1e-6).all()

    def test_dgx1_has_multiple_remote_curves(self, platform_b):
        remotes = [
            c for c in tolerance_curves(platform_b) if c.source_label.startswith("Remote")
        ]
        # DGX-1 pairs have 1-lane and 2-lane links: two distinct curves.
        assert len(remotes) == 2

    def test_plateaus_match_platform(self, platform_a):
        curves = {c.source_label: c for c in tolerance_curves(platform_a)}
        assert curves["Local"].plateau_bandwidth == pytest.approx(
            platform_a.gpu.local_bandwidth
        )
        assert curves["CPU"].plateau_bandwidth == pytest.approx(
            platform_a.pcie_bandwidth
        )
