"""Figure 13: PCIe/NVLink utilization with and without FEM."""

from repro.bench.experiments import fig13_link_utilization


def bench_fig13_link_utilization(run_experiment):
    result = run_experiment(fig13_link_utilization)
    for row in result.rows:
        assert row["pcie_w_fem_pct"] >= row["pcie_wo_fem_pct"]
        assert row["nvlink_w_fem_pct"] >= row["nvlink_wo_fem_pct"]
    # Average improvement is material (paper: PCIe ×1.91, NVLink ×3.47).
    ratios = [r["pcie_w_fem_pct"] / max(r["pcie_wo_fem_pct"], 1e-9) for r in result.rows]
    assert sum(ratios) / len(ratios) > 1.5
