"""Regenerate the golden coalescing fixture.

``coalesce_golden.json`` pins what the cross-request coalescing layer
(PR 5) produces on seeded workloads: the exact micro-batcher flush
schedule, the per-member responses ``serve_batch`` scatters out of one
shared extraction, and full soak reports for both batching modes.  The
``batching=off`` soak section is the regression anchor — it was verified
byte-identical (minus the new report fields, which are constants in off
mode) to the pre-coalescing serving runtime when this fixture was first
generated, so any later drift in the off path breaks the pin.

Only regenerate when an *intentional* behaviour change lands:

    PYTHONPATH=src python tests/golden/generate_coalesce_golden.py
"""

from __future__ import annotations

import hashlib
import json
import pathlib

import numpy as np

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.extractor import FactoredExtractor
from repro.core.policy import hot_replicate_warm_partition_policy
from repro.hardware import server_a, server_c
from repro.serve import (
    AdmissionConfig,
    BatchingMode,
    BoundedRequestQueue,
    CoalesceConfig,
    MicroBatcher,
    SoakConfig,
    run_soak,
)
from repro.serve.runtime import ServingRuntime
from repro.utils.stats import zipf_pmf

GOLDEN_PATH = pathlib.Path(__file__).parent / "coalesce_golden.json"

N, D = 2000, 8


def _digest(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def _serve_batch_records(platform) -> list[dict]:
    """serve_batch over seeded batches: one shared extraction per batch."""
    rng = np.random.default_rng(99)
    table = rng.standard_normal((N, D)).astype(np.float32)
    hotness = zipf_pmf(N, 1.2) * 1000.0
    placement = hot_replicate_warm_partition_policy(
        hotness, 250, platform.num_gpus, 0.5
    )
    cache = MultiGpuEmbeddingCache(platform, table, placement)
    runtime = ServingRuntime(FactoredExtractor(cache))

    records = []
    for gpu in range(platform.num_gpus):
        requests = [
            runtime.make_request(
                gpu, rng.integers(0, N, size=192), now=0.0, deadline=10.0
            )
            for _ in range(1 + gpu)  # batch sizes 1..num_gpus
        ]
        outcome = runtime.serve_batch(requests, now=0.0)
        records.append(
            {
                "gpu": gpu,
                "batch_size": outcome.batch_size,
                "union_size": outcome.union_size,
                "total_keys": outcome.total_keys,
                "dedup_ratio": outcome.dedup_ratio,
                "service_time": outcome.service_time,
                "completed_at": outcome.completed_at,
                "responses": [
                    {
                        "status": r.status.value,
                        "coalesced": r.coalesced,
                        "service_time": r.service_time,
                        "completed_at": r.completed_at,
                        "hedged": r.hedged,
                        "hedge_won": r.hedge_won,
                        "rerouted_keys": r.rerouted_keys,
                        "values": _digest(r.values),
                    }
                    for r in outcome.responses
                ],
            }
        )
    return records


def _batcher_schedule() -> list[dict]:
    """The flush policy's exact decisions on a scripted arrival tape."""
    from repro.serve.request import Request

    config = CoalesceConfig(
        mode=BatchingMode.COALESCE, max_batch=3, linger_seconds=0.4
    )
    # shed_on_slo off: the tape pins the *batcher's* policy, so the
    # admission controller must not eat the SLO-tight request first.
    queue = BoundedRequestQueue(0, AdmissionConfig(capacity=16, shed_on_slo=False))
    queue.estimator.observe(0.25)
    batcher = MicroBatcher(0, queue, config)
    tape = [
        # (arrival, deadline): one loose, one SLO-tight, then a pile-up
        (0.0, float("inf")),
        (0.1, 0.5),
        (0.15, float("inf")),
        (0.2, float("inf")),
        (0.9, float("inf")),
    ]
    schedule = []
    for i, (arrival, deadline) in enumerate(tape):
        queue.offer(
            Request(
                request_id=i,
                gpu=0,
                keys=np.arange(8, dtype=np.int64),
                arrival=arrival,
                deadline=deadline,
            ),
            arrival,
        )
        flush = batcher.flush_at(free_at=arrival)
        schedule.append({"after_offer": i, "flush_at": flush})
    taken = batcher.take(1.0)
    schedule.append(
        {
            "take_ids": [r.request_id for r in taken],
            "flush_at_after_take": batcher.flush_at(free_at=1.0),
        }
    )
    return schedule


def _expiry_accounting_record() -> dict:
    """A batch with an expired-on-arrival member, pinning the corrected
    accounting: only members that reach extraction count in batch_size."""
    rng = np.random.default_rng(7)
    platform = server_a()
    table = rng.standard_normal((N, D)).astype(np.float32)
    hotness = zipf_pmf(N, 1.2) * 1000.0
    placement = hot_replicate_warm_partition_policy(
        hotness, 250, platform.num_gpus, 0.5
    )
    cache = MultiGpuEmbeddingCache(platform, table, placement)
    runtime = ServingRuntime(FactoredExtractor(cache))
    dead = runtime.make_request(
        0, rng.integers(0, N, size=192), now=0.0, deadline=1.0
    )
    live = runtime.make_request(0, rng.integers(0, N, size=192), now=0.0)
    outcome = runtime.serve_batch([dead, live], now=5.0)
    return {
        "batch_size": outcome.batch_size,
        "union_size": outcome.union_size,
        "total_keys": outcome.total_keys,
        "dedup_ratio": outcome.dedup_ratio,
        "statuses": sorted(r.status.value for r in outcome.responses),
    }


def _soak_record(**overrides) -> dict:
    cfg = SoakConfig.quick(
        scenario="steady", load=1.5, requests_per_gpu=60, **overrides
    )
    return run_soak(cfg).to_dict()


def build() -> dict:
    return {
        "version": 1,
        "serve_batch": {
            "server_a": _serve_batch_records(server_a()),
            "server_c": _serve_batch_records(server_c()),
        },
        "batcher_schedule": _batcher_schedule(),
        "expiry_accounting": _expiry_accounting_record(),
        "soak_off": _soak_record(),
        "soak_coalesce": _soak_record(batching=BatchingMode.COALESCE),
    }


def main() -> None:
    doc = build()
    GOLDEN_PATH.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({GOLDEN_PATH.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
