"""Benchmark result containers and rendering."""

import pytest

from repro.bench.harness import ExperimentResult, render_table, speedup_summary


class TestExperimentResult:
    def test_add_and_columns(self):
        r = ExperimentResult("figX", "test")
        r.add(a=1, b=2.0)
        r.add(a=3, c="x")
        assert r.columns() == ["a", "b", "c"]

    def test_series(self):
        r = ExperimentResult("figX", "test")
        r.add(a=1)
        r.add(a=2)
        assert r.series("a") == [1, 2]
        assert r.series("missing") == [None, None]


class TestRenderTable:
    def test_contains_title_and_values(self):
        r = ExperimentResult("fig2", "Policies")
        r.add(system="rep", time_ms=1.234)
        text = render_table(r)
        assert "fig2" in text and "Policies" in text
        assert "rep" in text and "1.234" in text

    def test_none_renders_as_cross(self):
        r = ExperimentResult("fig10", "e2e")
        r.add(system="WholeGraph", time_ms=None)
        assert "✗" in render_table(r)

    def test_notes_rendered(self):
        r = ExperimentResult("fig10", "e2e", notes=["geomean 2x"])
        assert "note: geomean 2x" in render_table(r)

    def test_empty_result(self):
        text = render_table(ExperimentResult("t", "empty"))
        assert "empty" in text

    def test_small_floats_not_zeroed(self):
        r = ExperimentResult("t", "fmt")
        r.add(v=0.00042)
        assert "0.00042" in render_table(r)


class TestSpeedupSummary:
    def test_geomean_and_max(self):
        rows = [
            {"base": 2.0, "target": 1.0},
            {"base": 8.0, "target": 1.0},
        ]
        s = speedup_summary(rows, "base", "target")
        assert s["geomean"] == pytest.approx(4.0)
        assert s["max"] == pytest.approx(8.0)
        assert s["count"] == 2

    def test_skips_missing(self):
        rows = [{"base": None, "target": 1.0}, {"base": 2.0, "target": 1.0}]
        assert speedup_summary(rows, "base", "target")["count"] == 1

    def test_all_missing(self):
        s = speedup_summary([{"base": None, "target": None}], "base", "target")
        assert s["count"] == 0
