"""Real (numpy) DLRM/DCN inference — the dense side of DLR serving.

Implements the reference DLRM architecture [36] functionally: a bottom MLP
embeds the dense features, pairwise dot-product interactions combine them
with the (cache-extracted) embedding vectors, and a top MLP produces the
click probability.  The DCN variant [41] replaces the interaction layer
with explicit cross layers.  Weights are random (inference-only, as in the
paper's DLR evaluation); performance is modelled by
:mod:`repro.dlr.models` — this module supplies functional realism for the
examples and tests.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import make_rng


def _mlp_params(dims: list[int], rng: np.random.Generator):
    weights = []
    biases = []
    for d_in, d_out in zip(dims[:-1], dims[1:]):
        weights.append(rng.normal(0.0, 1.0 / np.sqrt(d_in), (d_in, d_out)))
        biases.append(np.zeros(d_out))
    return weights, biases


def _mlp_forward(x: np.ndarray, weights, biases, final_activation: bool) -> np.ndarray:
    for i, (w, b) in enumerate(zip(weights, biases)):
        x = x @ w + b
        last = i == len(weights) - 1
        if not last or final_activation:
            x = np.maximum(x, 0.0)
    return x


def sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30, 30)))


class DlrmNet:
    """Reference DLRM: bottom MLP → dot interactions → top MLP → sigmoid."""

    def __init__(
        self,
        num_tables: int,
        embedding_dim: int,
        dense_dim: int = 13,
        bottom_dims: tuple[int, ...] = (64,),
        top_dims: tuple[int, ...] = (128, 64),
        seed: int = 0,
    ) -> None:
        if num_tables < 1:
            raise ValueError("need at least one embedding table")
        rng = make_rng(seed)
        self.num_tables = num_tables
        self.embedding_dim = embedding_dim
        self.dense_dim = dense_dim
        self.bottom_w, self.bottom_b = _mlp_params(
            [dense_dim, *bottom_dims, embedding_dim], rng
        )
        num_features = num_tables + 1  # embeddings + projected dense vector
        interaction_dim = num_features * (num_features - 1) // 2 + embedding_dim
        self.top_w, self.top_b = _mlp_params([interaction_dim, *top_dims, 1], rng)

    def forward(self, dense: np.ndarray, embeddings: np.ndarray) -> np.ndarray:
        """Click probabilities.

        Args:
            dense: ``(batch, dense_dim)`` continuous features.
            embeddings: ``(batch, num_tables, embedding_dim)`` — the
                vectors the embedding cache extracted for this batch.

        Returns:
            ``(batch,)`` probabilities in (0, 1).
        """
        batch = dense.shape[0]
        if embeddings.shape != (batch, self.num_tables, self.embedding_dim):
            raise ValueError(
                f"embeddings must be (batch, {self.num_tables}, "
                f"{self.embedding_dim}), got {embeddings.shape}"
            )
        projected = _mlp_forward(dense, self.bottom_w, self.bottom_b, True)
        feats = np.concatenate([projected[:, None, :], embeddings], axis=1)
        # Pairwise dot interactions (upper triangle, no diagonal).
        gram = np.einsum("bik,bjk->bij", feats, feats)
        iu = np.triu_indices(feats.shape[1], k=1)
        interactions = gram[:, iu[0], iu[1]]
        top_in = np.concatenate([projected, interactions], axis=1)
        logit = _mlp_forward(top_in, self.top_w, self.top_b, False)
        return sigmoid(logit[:, 0])


class DcnNet:
    """Deep & Cross Network: explicit cross layers over the flat features."""

    def __init__(
        self,
        num_tables: int,
        embedding_dim: int,
        dense_dim: int = 13,
        cross_layers: int = 3,
        deep_dims: tuple[int, ...] = (128, 64),
        seed: int = 0,
    ) -> None:
        if cross_layers < 1:
            raise ValueError("DCN needs at least one cross layer")
        rng = make_rng(seed)
        self.num_tables = num_tables
        self.embedding_dim = embedding_dim
        self.dense_dim = dense_dim
        d = dense_dim + num_tables * embedding_dim
        self.cross_w = [rng.normal(0.0, 1.0 / np.sqrt(d), d) for _ in range(cross_layers)]
        self.cross_b = [np.zeros(d) for _ in range(cross_layers)]
        self.deep_w, self.deep_b = _mlp_params([d, *deep_dims], rng)
        self.head_w = rng.normal(0.0, 1.0 / np.sqrt(d + deep_dims[-1]), d + deep_dims[-1])

    def forward(self, dense: np.ndarray, embeddings: np.ndarray) -> np.ndarray:
        """Click probabilities for a batch (same contract as DLRM)."""
        batch = dense.shape[0]
        if embeddings.shape != (batch, self.num_tables, self.embedding_dim):
            raise ValueError("embeddings shape mismatch")
        x0 = np.concatenate([dense, embeddings.reshape(batch, -1)], axis=1)
        x = x0
        for w, b in zip(self.cross_w, self.cross_b):
            # x_{l+1} = x0 * (x_l · w) + b + x_l  — the cross layer.
            x = x0 * (x @ w)[:, None] + b + x
        deep = _mlp_forward(x0, self.deep_w, self.deep_b, True)
        logit = np.concatenate([x, deep], axis=1) @ self.head_w
        return sigmoid(logit)


def serve_batch(
    net,
    lookup,
    keys: np.ndarray,
    dense: np.ndarray,
) -> np.ndarray:
    """Glue: run one inference batch through an embedding cache + model.

    Args:
        net: a :class:`DlrmNet` or :class:`DcnNet`.
        lookup: callable ``(flat_keys) -> (len(flat_keys), dim)`` values —
            e.g. ``lambda k: layer.lookup(gpu, k)``.
        keys: ``(batch, num_tables)`` embedding keys.
        dense: ``(batch, dense_dim)`` continuous features.
    """
    batch, num_tables = keys.shape
    values = lookup(keys.reshape(-1))
    embeddings = values.reshape(batch, num_tables, -1)
    return net.forward(dense, embeddings)
