"""Runtime factored Extractor (§5.3, Figure 8) with degraded-mode routing.

The Extractor turns one GPU's key batch into an *extraction plan*: keys
grouped by source location, cores dedicated per non-local group within link
tolerance, and the local group scheduled last at low priority to pad ragged
finishing times.  Executing a plan gathers the actual values (through the
cache stores) and prices it with the factored timing model, so functional
correctness and simulated performance come from one code path.

Fault tolerance: when a :class:`~repro.faults.spec.HealthView` marks a
source GPU down or a link partitioned — or the location table hands back a
corrupt/stale ``<GPU, Offset>`` — the planner reroutes exactly those keys
to the cheapest surviving replica (host as the last resort), re-normalizes
the core-dedication map over the sources that remain, and emits
``faults.rerouted_keys`` so degradation is visible, never silent.  A batch
always completes; only its price changes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cache import MultiGpuEmbeddingCache
from repro.faults.degrade import degraded_platform
from repro.faults.injector import FaultInjector
from repro.faults.spec import HealthView
from repro.hardware.platform import HOST, Platform
from repro.obs import get_registry, timer
from repro.sim.engine import BatchReport, simulate_batch
from repro.sim.mechanisms import (
    GpuDemand,
    Mechanism,
    core_dedication,
    factored_extraction,
)
from repro.utils.logging import get_logger

logger = get_logger("core.extractor")


def _source_class(source: int, dst: int) -> str:
    if source == dst:
        return "local"
    if source == HOST:
        return "host"
    return "remote"


@dataclass(frozen=True)
class SourceGroup:
    """One source's share of a batch: which keys, read from where."""

    source: int
    #: positions of these keys within the original batch
    batch_positions: np.ndarray
    #: the entry ids to read
    keys: np.ndarray
    #: slot offsets on the source GPU (empty for HOST, where keys index
    #: the host table directly)
    offsets: np.ndarray
    dedicated_cores: int


@dataclass(frozen=True)
class ExtractionPlan:
    """A factored plan for one GPU's batch (Figure 8's grouped layout)."""

    dst: int
    batch_size: int
    #: non-local groups first (launch order), local group last (low priority)
    groups: tuple[SourceGroup, ...]
    #: keys this plan rerouted away from their mapped source (faults)
    rerouted_keys: int = 0
    #: sources whose mapped keys had to be rerouted because the source
    #: itself failed (down GPU, partitioned link, stale/corrupt slots) —
    #: the serving layer's circuit breakers consume this.  Sources the
    #: caller *asked* to exclude are not failures and do not appear.
    failed_sources: tuple[int, ...] = ()

    @property
    def local_group(self) -> SourceGroup | None:
        for g in self.groups:
            if g.source == self.dst:
                return g
        return None

    @property
    def nonlocal_groups(self) -> tuple[SourceGroup, ...]:
        return tuple(g for g in self.groups if g.source != self.dst)

    def demand(self, entry_bytes: int) -> GpuDemand:
        return GpuDemand(
            dst=self.dst,
            volumes={
                g.source: float(len(g.keys) * entry_bytes) for g in self.groups
            },
        )


def renormalize_dedication(
    platform: Platform,
    dst: int,
    present: list[int],
    dedication: dict[int, int],
) -> tuple[dict[int, int], list[int]]:
    """Re-normalize core shares when the map misses a present source.

    The topology model and the location table can disagree (a stale map
    after a fault, a route the solver never priced): instead of the old
    one-core floor, recompute the non-host split over *every* present
    remote source, weighting by link bandwidth (unreachable sources drain
    through the host path, so they weigh in at PCIe speed), and shrink
    proportionally so the total never exceeds the SM budget.

    Returns ``(dedication, missing)``; when nothing was missing the input
    map is returned unchanged.
    """
    remotes = [s for s in present if s not in (dst, HOST)]
    missing = [s for s in remotes if s not in dedication]
    if not missing:
        return dedication, []
    total = platform.gpu.num_cores
    host_cores = dedication.get(HOST, 0)
    budget = max(total - host_cores, len(remotes))
    weights: dict[int, float] = {}
    for s in remotes:
        bw = platform.bandwidth(dst, s)
        weights[s] = bw if bw > 0 else platform.pcie_bandwidth
    wsum = sum(weights.values())
    out: dict[int, int] = {HOST: host_cores} if HOST in dedication else {}
    for s in remotes:
        out[s] = max(1, int(budget * weights[s] / wsum))
    while sum(v for k, v in out.items() if k != HOST) > budget:
        biggest = max((k for k in out if k != HOST), key=lambda k: out[k])
        if out[biggest] <= 1:
            break
        out[biggest] -= 1
    return out, missing


class FactoredExtractor:
    """Plans and executes factored extraction over a multi-GPU cache.

    ``injector`` (optional) supplies per-call health views from its fault
    plan; callers can also pass an explicit ``health`` to any planning
    entry point, which wins over the injector.
    """

    def __init__(
        self,
        cache: MultiGpuEmbeddingCache,
        injector: FaultInjector | None = None,
    ) -> None:
        self._cache = cache
        self._injector = injector

    @property
    def platform(self) -> Platform:
        return self._cache.platform

    @property
    def cache(self) -> MultiGpuEmbeddingCache:
        return self._cache

    def _resolve_health(
        self, health: HealthView | None, now: float
    ) -> HealthView | None:
        if health is not None:
            return health
        if self._injector is not None:
            return self._injector.health(now)
        return None

    def _find_replicas(
        self,
        dst: int,
        keys: np.ndarray,
        health: HealthView | None,
        exclude: frozenset[int] = frozenset(),
    ) -> np.ndarray:
        """Cheapest surviving holder per key; HOST when nobody has it.

        Degraded links inflate a candidate's cost by ``1 / link_factor``
        so a half-speed replica loses to a healthy one but still beats
        host when it is the only copy left.  Sources in ``exclude``
        (e.g. breaker-open ones) are never candidates.
        """
        out = np.full(len(keys), HOST, dtype=np.int16)
        best_cost = np.full(len(keys), np.inf)
        for g in self.platform.gpu_ids:
            if g == dst or g in exclude:
                continue
            if health is not None and not health.source_usable(dst, g):
                continue
            if not self.platform.is_connected(dst, g):
                continue
            cost = self.platform.cost_per_byte(dst, g)
            if health is not None:
                cost /= health.link_factor(dst, g)
            if not np.isfinite(cost):
                continue
            held = self._cache.store(g).offset_of[keys] >= 0
            better = held & (cost < best_cost)
            out[better] = g
            best_cost[better] = cost
        return out

    def _reroute_degraded(
        self,
        dst: int,
        keys: np.ndarray,
        sources: np.ndarray,
        health: HealthView | None,
        reg,
        exclude: frozenset[int] = frozenset(),
    ) -> tuple[np.ndarray, int, tuple[int, ...]]:
        """Replace unusable sources in ``sources``.

        A source is unusable when its id is corrupt (outside the GPU
        range), the health view marks it down or unreachable, its store
        does not actually hold the key (a stale location), or the caller
        excluded it (an open circuit breaker).  Returns
        ``(sources, rerouted, failed_sources)`` where ``failed_sources``
        attributes reroutes to the sources that *failed* (exclusions are
        deliberate, not failures).  Corrupt slots are blamed on whichever
        GPU stores actually hold the affected entries — the replicas whose
        location records went bad.
        """
        G = self.platform.num_gpus
        corrupt_mask = (sources != HOST) & ((sources < 0) | (sources >= G))
        bad = corrupt_mask.copy()
        n_corrupt = int(bad.sum())
        n_stale = 0
        failed: set[int] = set()
        for g in range(G):
            idx = np.flatnonzero(sources == g)
            if len(idx) == 0:
                continue
            if g != dst and g in exclude:
                bad[idx] = True
                continue
            if g != dst and not self.platform.is_connected(dst, g):
                # A corrupt map can route over a link that does not exist;
                # treat it like a partition rather than let the simulator
                # reject the plan.
                bad[idx] = True
                n_corrupt += len(idx)
                failed.add(g)
                continue
            if health is not None and not health.source_usable(dst, g):
                bad[idx] = True
                failed.add(g)
                continue
            stale = self._cache.store(g).offset_of[keys[idx]] < 0
            if stale.any():
                bad[idx[stale]] = True
                n_stale += int(stale.sum())
                failed.add(g)
        if corrupt_mask.any():
            corrupt_keys = keys[corrupt_mask]
            for g in range(G):
                if (self._cache.store(g).offset_of[corrupt_keys] >= 0).any():
                    failed.add(g)
        if not bad.any():
            return sources, 0, ()
        bad_idx = np.flatnonzero(bad)
        replacements = self._find_replicas(dst, keys[bad_idx], health, exclude)
        sources = sources.copy()
        sources[bad_idx] = replacements
        n = len(bad_idx)
        reg.counter("faults.rerouted_keys", dst=dst).inc(n)
        reg.counter(
            "faults.rerouted_keys_to", target="host"
        ).inc(int((replacements == HOST).sum()))
        reg.counter(
            "faults.rerouted_keys_to", target="replica"
        ).inc(int((replacements != HOST).sum()))
        if n_corrupt:
            reg.counter("faults.corrupt_reads").inc(n_corrupt)
        if n_stale:
            reg.counter("faults.stale_reads").inc(n_stale)
        logger.debug(
            "GPU %d: rerouted %d/%d keys (%d corrupt, %d stale) around faults",
            dst, n, len(keys), n_corrupt, n_stale,
        )
        return sources, n, tuple(sorted(failed))

    def plan(
        self,
        dst: int,
        keys: np.ndarray,
        health: HealthView | None = None,
        now: float = 0.0,
        exclude_sources: frozenset[int] | set[int] | None = None,
    ) -> ExtractionPlan:
        """Group a batch by source location and dedicate cores (§5.3).

        ``exclude_sources`` names source GPUs the plan must not read from
        even if they look healthy — the serving layer's open circuit
        breakers.  Their keys reroute through the degraded-mode path
        exactly like a partition would; local reads (``dst`` itself) are
        never excluded, since the local store needs no link.
        """
        reg = get_registry()
        health = self._resolve_health(health, now)
        exclude = frozenset(int(s) for s in (exclude_sources or ()))
        with timer("extractor.plan.seconds", reg):
            keys = np.ascontiguousarray(keys, dtype=np.int64)
            sources = self._cache.source_map[dst][keys]
            sources, rerouted, failed_sources = self._reroute_degraded(
                dst, keys, sources, health, reg, exclude
            )
            platform = self.platform
            if health is not None:
                platform = degraded_platform(platform, health)
            present = [int(s) for s in np.unique(sources)]
            dedication = core_dedication(platform, dst, present)
            dedication, missing = renormalize_dedication(
                platform, dst, present, dedication
            )
            if missing:
                # A present source the core-dedication map does not cover
                # means the topology model and the location table disagree
                # — survivable, and the shares above were re-normalized
                # over what is actually present, but never silent.
                reg.counter("extractor.plan.dedication_missing").inc(len(missing))
                reg.counter("extractor.plan.dedication_renormalized").inc()
                logger.warning(
                    "GPU %d batch reads from source(s) %s absent from the "
                    "core-dedication map; re-normalized shares across %d "
                    "remote source(s)",
                    dst, missing, len([s for s in present if s not in (dst, HOST)]),
                )
            groups: list[SourceGroup] = []
            local_group: SourceGroup | None = None
            for src in present:
                positions = np.flatnonzero(sources == src)
                group_keys = keys[positions]
                if src == HOST:
                    offsets = np.empty(0, dtype=np.int64)
                else:
                    offsets = self._cache.store(src).offset_of[group_keys]
                group = SourceGroup(
                    source=src,
                    batch_positions=positions,
                    keys=group_keys,
                    offsets=offsets,
                    dedicated_cores=(
                        self.platform.gpu.num_cores
                        if src == dst
                        else dedication.get(src, 1)
                    ),
                )
                reg.counter(
                    "extractor.plan.keys", source=_source_class(src, dst)
                ).inc(len(group_keys))
                reg.histogram(
                    "extractor.plan.dedicated_cores",
                    source=_source_class(src, dst),
                ).observe(group.dedicated_cores)
                if src == dst:
                    local_group = group
                else:
                    groups.append(group)
            # Local extraction is launched last, on a low-priority stream.
            if local_group is not None:
                groups.append(local_group)
        reg.counter("extractor.plan.calls").inc()
        return ExtractionPlan(
            dst=dst,
            batch_size=len(keys),
            groups=tuple(groups),
            rerouted_keys=rerouted,
            failed_sources=failed_sources,
        )

    def execute(self, plan: ExtractionPlan) -> tuple[np.ndarray, GpuDemand]:
        """Gather values per the plan; returns (values, priced demand)."""
        reg = get_registry()
        entry_bytes = self._cache.entry_bytes
        with timer("extractor.execute.seconds", reg):
            values = np.empty(
                (plan.batch_size, self._cache.dim),
                dtype=self._cache.store(0).data.dtype,
            )
            for group in plan.groups:
                if group.source == HOST:
                    values[group.batch_positions] = self._cache.host_gather(
                        group.keys
                    )
                else:
                    store = self._cache.store(group.source)
                    values[group.batch_positions] = store.data[group.offsets]
                reg.counter(
                    "extractor.execute.bytes",
                    source=_source_class(group.source, plan.dst),
                ).inc(len(group.keys) * entry_bytes)
        reg.counter("extractor.execute.calls").inc()
        return values, plan.demand(entry_bytes)

    def extract(
        self,
        keys_per_gpu: list[np.ndarray],
        local_padding: bool = True,
        health: HealthView | None = None,
        now: float = 0.0,
    ) -> tuple[list[np.ndarray], BatchReport]:
        """Plan, execute and price one data-parallel batch."""
        health = self._resolve_health(health, now)
        plans = [
            self.plan(i, keys, health=health) for i, keys in enumerate(keys_per_gpu)
        ]
        outputs = [self.execute(p) for p in plans]
        report = simulate_batch(
            self.platform,
            [demand for _, demand in outputs],
            mechanism=Mechanism.FACTORED,
            local_padding=local_padding,
            health=health,
        )
        return [values for values, _ in outputs], report

    def price(
        self,
        dst: int,
        keys: np.ndarray,
        local_padding: bool = True,
        health: HealthView | None = None,
        now: float = 0.0,
    ):
        """Timing-only path for one GPU (no value gathering)."""
        health = self._resolve_health(health, now)
        plan = self.plan(dst, keys, health=health)
        platform = self.platform
        if health is not None:
            platform = degraded_platform(platform, health)
        return factored_extraction(
            platform,
            plan.demand(self._cache.entry_bytes),
            local_padding=local_padding,
        )
