"""GNN substrate: CSR graphs, k-hop sampling, training workloads, models."""

from repro.gnn.graph import CSRGraph, power_law_graph
from repro.gnn.models import (
    GCN,
    GRAPHSAGE,
    GnnModelSpec,
    dense_time_per_iteration,
    model_for_mode,
    sampling_time_per_iteration,
)
from repro.gnn.io import load_graph, read_edge_list, save_graph, write_edge_list
from repro.gnn.nn import FanoutTree, GraphSageModel, sample_tree
from repro.gnn.sampling import SampledBatch, khop_sample, negative_sample, sample_neighbors
from repro.gnn.workload import DEFAULT_FANOUTS, GnnWorkload

__all__ = [
    "load_graph",
    "read_edge_list",
    "save_graph",
    "write_edge_list",
    "FanoutTree",
    "GraphSageModel",
    "sample_tree",
    "CSRGraph",
    "power_law_graph",
    "GCN",
    "GRAPHSAGE",
    "GnnModelSpec",
    "dense_time_per_iteration",
    "model_for_mode",
    "sampling_time_per_iteration",
    "SampledBatch",
    "khop_sample",
    "negative_sample",
    "sample_neighbors",
    "DEFAULT_FANOUTS",
    "GnnWorkload",
]
