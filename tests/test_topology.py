"""Interconnect topologies (Figure 3)."""

import numpy as np
import pytest

from repro.hardware.topology import (
    Topology,
    TopologyKind,
    dgx1_8gpu,
    hardwired_fully_connected,
    nvswitch,
)


class TestHardwiredFullyConnected:
    def test_4gpu_pair_bandwidth(self):
        # 6 lanes / 3 peers = 2 lanes = 50 GB/s per pair (Fig. 3(a)).
        topo = hardwired_fully_connected(4)
        assert topo.pair_bandwidth(0, 1) == pytest.approx(50e9)

    def test_all_pairs_connected(self):
        topo = hardwired_fully_connected(4)
        for i in range(4):
            for j in range(4):
                if i != j:
                    assert topo.connected(i, j)

    def test_outbound_sums_lanes(self):
        topo = hardwired_fully_connected(4)
        assert topo.outbound_bandwidth(2) == pytest.approx(150e9)

    def test_single_clique(self):
        assert hardwired_fully_connected(4).cliques() == [[0, 1, 2, 3]]

    def test_rejects_uneven_split(self):
        with pytest.raises(ValueError):
            hardwired_fully_connected(5, lanes_per_gpu=6)

    def test_rejects_single_gpu(self):
        with pytest.raises(ValueError):
            hardwired_fully_connected(1)


class TestDgx1:
    def test_each_gpu_uses_six_lanes(self):
        topo = dgx1_8gpu()
        assert (topo.lane_counts.sum(axis=1) == 6).all()

    def test_has_unconnected_pairs(self):
        topo = dgx1_8gpu()
        assert not topo.connected(0, 5)
        assert not topo.connected(0, 6)
        assert not topo.connected(0, 7)

    def test_cross_links_are_double(self):
        topo = dgx1_8gpu()
        for g in range(4):
            assert topo.lane_counts[g, g + 4] == 2

    def test_two_quad_cliques(self):
        cliques = dgx1_8gpu().cliques()
        assert sorted(sorted(c) for c in cliques) == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_nonuniform_bandwidth(self):
        topo = dgx1_8gpu()
        bws = {topo.pair_bandwidth(0, j) for j in topo.peers(0)}
        assert len(bws) > 1

    def test_symmetric(self):
        topo = dgx1_8gpu()
        assert np.array_equal(topo.lane_counts, topo.lane_counts.T)


class TestNvswitch:
    def test_every_pair_reachable(self):
        topo = nvswitch(8)
        for i in range(8):
            assert len(topo.peers(i)) == 7

    def test_single_flow_gets_full_outbound(self):
        topo = nvswitch(8)
        assert topo.pair_bandwidth(0, 1) == pytest.approx(300e9)

    def test_outbound_capped_at_lanes(self):
        topo = nvswitch(8)
        assert topo.outbound_bandwidth(3) == pytest.approx(300e9)

    def test_one_clique(self):
        assert nvswitch(8).cliques() == [list(range(8))]

    def test_kind(self):
        assert nvswitch(4).kind is TopologyKind.SWITCH


class TestValidation:
    def test_rejects_asymmetric(self):
        lanes = np.zeros((2, 2), dtype=int)
        lanes[0, 1] = 1
        with pytest.raises(ValueError):
            Topology(TopologyKind.HARDWIRED, lanes, 25e9, 6)

    def test_rejects_nonzero_diagonal(self):
        lanes = np.eye(2, dtype=int)
        with pytest.raises(ValueError):
            Topology(TopologyKind.HARDWIRED, lanes, 25e9, 6)

    def test_rejects_negative_lanes(self):
        lanes = np.full((2, 2), -1, dtype=int)
        np.fill_diagonal(lanes, 0)
        with pytest.raises(ValueError):
            Topology(TopologyKind.HARDWIRED, lanes, 25e9, 6)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            Topology(TopologyKind.HARDWIRED, np.zeros((2, 3), dtype=int), 25e9, 6)

    def test_pair_bandwidth_self_is_error(self):
        topo = nvswitch(4)
        with pytest.raises(ValueError):
            topo.pair_bandwidth(1, 1)

    def test_lane_matrix_immutable(self):
        topo = nvswitch(4)
        with pytest.raises(ValueError):
            topo.lane_counts[0, 1] = 99
