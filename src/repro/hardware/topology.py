"""GPU interconnect topologies (paper Figure 3).

A :class:`Topology` records, for every ordered GPU pair, the point-to-point
bandwidth an extraction read can use, and whether the platform is hard-wired
(bandwidth physically partitioned per pair) or switch-based (bandwidth
dynamically allocated by an NVSwitch, subject to inbound/outbound caps).

Three presets reproduce the paper's testbeds:

* :func:`hardwired_fully_connected` — Figure 3(a), e.g. 4×V100 where each
  GPU's 6 lanes split evenly into 2 lanes (50 GB/s) per peer;
* :func:`dgx1_8gpu` — Figure 3(b), the DGX-1 8×V100 board with non-uniform
  lane counts and *unconnected* pairs that fall back to PCIe;
* :func:`nvswitch` — Figure 3(c), e.g. DGX-A100 where every pair is
  reachable at full outbound bandwidth but concurrent readers of one GPU
  share its outbound capacity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class TopologyKind(enum.Enum):
    """How inter-GPU bandwidth is provisioned."""

    HARDWIRED = "hardwired"
    SWITCH = "switch"


@dataclass(frozen=True)
class Topology:
    """Interconnect description for ``num_gpus`` GPUs.

    Attributes:
        kind: hard-wired or switch-based.
        lane_counts: ``(G, G)`` integer matrix; entry ``[i, j]`` is the
            number of NVLink lanes between GPU ``i`` and GPU ``j`` (0 means
            the pair is unconnected and must use PCIe).  For switch
            topologies this holds each GPU's full lane count for every
            reachable peer, because the switch can allocate the whole
            outbound bandwidth to a single flow.
        lane_bandwidth: bytes/second per lane.
        outbound_lanes: lanes wired from each GPU into the fabric; caps the
            *sum* of concurrent flows out of one GPU.
    """

    kind: TopologyKind
    lane_counts: np.ndarray
    lane_bandwidth: float
    outbound_lanes: int
    name: str = field(default="custom")

    def __post_init__(self) -> None:
        lanes = np.asarray(self.lane_counts)
        if lanes.ndim != 2 or lanes.shape[0] != lanes.shape[1]:
            raise ValueError(f"lane_counts must be square, got {lanes.shape}")
        if (lanes < 0).any():
            raise ValueError("lane counts must be non-negative")
        if not np.array_equal(lanes, lanes.T):
            raise ValueError("lane_counts must be symmetric")
        if np.diagonal(lanes).any():
            raise ValueError("diagonal lane counts must be zero (local is not a link)")
        if self.lane_bandwidth <= 0:
            raise ValueError("lane bandwidth must be positive")
        # Freeze the array so a frozen dataclass is actually immutable.
        lanes = lanes.astype(np.int64)
        lanes.setflags(write=False)
        object.__setattr__(self, "lane_counts", lanes)

    @property
    def num_gpus(self) -> int:
        return int(self.lane_counts.shape[0])

    def connected(self, i: int, j: int) -> bool:
        """Whether GPUs ``i`` and ``j`` have a fast path (not PCIe)."""
        if i == j:
            return True
        return bool(self.lane_counts[i, j] > 0)

    def pair_bandwidth(self, i: int, j: int) -> float:
        """Point-to-point bandwidth from GPU ``j`` to GPU ``i``, bytes/s.

        Returns 0.0 for unconnected pairs; callers fall back to PCIe.
        On a switch platform this is the *uncontended* bandwidth; the
        simulator applies inbound-collision sharing separately.
        """
        if i == j:
            raise ValueError("pair_bandwidth is undefined for a GPU with itself")
        return float(self.lane_counts[i, j]) * self.lane_bandwidth

    def outbound_bandwidth(self, j: int) -> float:
        """Total bandwidth other GPUs can concurrently pull from GPU ``j``."""
        if self.kind is TopologyKind.SWITCH:
            return self.outbound_lanes * self.lane_bandwidth
        return float(self.lane_counts[j].sum()) * self.lane_bandwidth

    def peers(self, i: int) -> list[int]:
        """GPUs directly reachable from ``i`` over NVLink/NVSwitch."""
        return [j for j in range(self.num_gpus) if j != i and self.connected(i, j)]

    def cliques(self) -> list[list[int]]:
        """Partition GPUs into maximal fully-connected groups.

        This is the grouping Quiver's clique cache policy uses on DGX-1
        (two quads).  Greedy construction is exact for the regular
        topologies modelled here and deterministic for tests.
        """
        remaining = list(range(self.num_gpus))
        groups: list[list[int]] = []
        while remaining:
            seed = remaining.pop(0)
            group = [seed]
            for cand in list(remaining):
                if all(self.connected(cand, member) for member in group):
                    group.append(cand)
                    remaining.remove(cand)
            groups.append(group)
        return groups


def hardwired_fully_connected(
    num_gpus: int, lanes_per_gpu: int = 6, lane_bandwidth: float = 25e9
) -> Topology:
    """Uniform all-to-all hard-wired topology (Figure 3(a)).

    Each GPU's ``lanes_per_gpu`` lanes are split evenly among its
    ``num_gpus - 1`` peers, e.g. 4×V100: 6 lanes / 3 peers = 2 lanes
    (50 GB/s) per pair.
    """
    if num_gpus < 2:
        raise ValueError("need at least two GPUs for an interconnect")
    if lanes_per_gpu % (num_gpus - 1) != 0:
        raise ValueError(
            f"{lanes_per_gpu} lanes cannot split evenly across {num_gpus - 1} peers"
        )
    per_pair = lanes_per_gpu // (num_gpus - 1)
    lanes = np.full((num_gpus, num_gpus), per_pair, dtype=np.int64)
    np.fill_diagonal(lanes, 0)
    return Topology(
        kind=TopologyKind.HARDWIRED,
        lane_counts=lanes,
        lane_bandwidth=lane_bandwidth,
        outbound_lanes=lanes_per_gpu,
        name=f"hardwired-{num_gpus}gpu",
    )


#: DGX-1 (V100) lane map: two fully connected quads {0..3} and {4..7} with
#: one double-lane cross link per GPU.  Lane counts per the NVLink2 board
#: wiring; every GPU uses exactly its 6 ports.  Pairs like (0, 5) are
#: unconnected and fall back to PCIe — the case PartU's clique split exists
#: to avoid.
_DGX1_EDGES: tuple[tuple[int, int, int], ...] = (
    (0, 1, 1),
    (0, 2, 1),
    (0, 3, 2),
    (1, 2, 2),
    (1, 3, 1),
    (2, 3, 1),
    (4, 5, 1),
    (4, 6, 1),
    (4, 7, 2),
    (5, 6, 2),
    (5, 7, 1),
    (6, 7, 1),
    (0, 4, 2),
    (1, 5, 2),
    (2, 6, 2),
    (3, 7, 2),
)


def dgx1_8gpu(lane_bandwidth: float = 25e9) -> Topology:
    """The non-uniform 8×V100 DGX-1 topology (Figure 3(b))."""
    lanes = np.zeros((8, 8), dtype=np.int64)
    for a, b, count in _DGX1_EDGES:
        lanes[a, b] = count
        lanes[b, a] = count
    return Topology(
        kind=TopologyKind.HARDWIRED,
        lane_counts=lanes,
        lane_bandwidth=lane_bandwidth,
        outbound_lanes=6,
        name="dgx1-8xV100",
    )


def nvswitch(num_gpus: int, lanes_per_gpu: int = 12, lane_bandwidth: float = 25e9) -> Topology:
    """Switch-based topology (Figure 3(c)), e.g. DGX-A100.

    Every pair is reachable; a single flow can use the GPU's entire
    outbound bandwidth, but concurrent readers of one GPU share it.
    """
    if num_gpus < 2:
        raise ValueError("need at least two GPUs for an interconnect")
    lanes = np.full((num_gpus, num_gpus), lanes_per_gpu, dtype=np.int64)
    np.fill_diagonal(lanes, 0)
    return Topology(
        kind=TopologyKind.SWITCH,
        lane_counts=lanes,
        lane_bandwidth=lane_bandwidth,
        outbound_lanes=lanes_per_gpu,
        name=f"nvswitch-{num_gpus}gpu",
    )
