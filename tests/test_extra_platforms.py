"""Out-of-paper platforms: DGX-2 and PCIe-only boxes."""

import numpy as np
import pytest

from repro.core.evaluate import evaluate_placement, hit_rates
from repro.core.policy import replication_policy
from repro.core.solver import SolverConfig, solve_policy
from repro.hardware.platform import HOST, dgx2, pcie_only
from repro.sim.mechanisms import Mechanism
from repro.utils.stats import zipf_pmf

FAST = SolverConfig(coarse_block_frac=0.05)


class TestDgx2:
    def test_shape(self):
        platform = dgx2()
        assert platform.num_gpus == 16
        assert platform.gpu.name == "V100-32GB"

    def test_fair_share_is_thin(self):
        platform = dgx2()
        # 150 GB/s outbound / 15 readers = 10 GB/s — thinner than PCIe.
        assert platform.bandwidth(0, 1) == pytest.approx(10e9)
        assert platform.bandwidth(0, 1) < platform.pcie_bandwidth

    def test_all_pairs_reachable(self):
        platform = dgx2()
        assert len(platform.sources_for(0)) == 1 + 15 + 1

    def test_solver_handles_16_gpus(self):
        platform = dgx2()
        hot = zipf_pmf(1000, 1.2) * 10_000
        solved = solve_policy(platform, hot, 60, 512, FAST)
        placement = solved.realize()
        placement.validate_capacity(60)
        # Thin remote shares push the solver to replicate heavily.
        assert placement.replication_factor() > 2.0


class TestPcieOnly:
    def test_only_local_and_host(self):
        platform = pcie_only()
        assert platform.sources_for(2) == [2, HOST]

    def test_remote_unreachable(self):
        platform = pcie_only()
        assert platform.bandwidth(0, 1) == 0.0
        assert platform.cost_per_byte(0, 1) == float("inf")
        assert not platform.is_connected(0, 1)

    def test_solver_degenerates_to_replication(self):
        platform = pcie_only()
        hot = zipf_pmf(1000, 1.2) * 10_000
        solved = solve_policy(platform, hot, 100, 512, FAST)
        placement = solved.realize()
        # Nothing to partition for: every GPU caches (almost) the same
        # hottest entries.
        assert placement.replication_factor() > 3.5
        rep = replication_policy(hot, 100, 4)
        ug_time = evaluate_placement(
            platform, placement, hot, 512, Mechanism.FACTORED
        ).time
        rep_time = evaluate_placement(
            platform, rep, hot, 512, Mechanism.FACTORED
        ).time
        assert ug_time == pytest.approx(rep_time, rel=0.05)

    def test_no_remote_hits_ever(self):
        platform = pcie_only()
        hot = zipf_pmf(500, 1.0) * 1000
        solved = solve_policy(platform, hot, 50, 512, FAST).realize()
        hits = hit_rates(platform, solved, hot)
        assert hits.remote == 0.0

    def test_gpu_count_configurable(self):
        platform = pcie_only(num_gpus=2)
        assert platform.num_gpus == 2
