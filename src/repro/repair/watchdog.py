"""Node-lifecycle watchdog: fuse breaker state, scrub findings, and the
fault-plan health view into one per-node state machine.

The cluster frontend already has three *partial* views of a node's
health: the :class:`~repro.serve.breaker.BreakerBoard` (observed RPC
outcomes), the scrubber's quarantine depth (observed data integrity),
and the :class:`~repro.faults.spec.HealthView` (ground-truth
reachability in the simulation).  Each alone routes around a different
failure; the watchdog fuses them into one lifecycle every consumer can
agree on::

    HEALTHY ──breaker OPEN / unreachable──► EJECTED
       │                                        │ reachable again,
       │ breaker HALF_OPEN or                   │ recovery attached
       │ outstanding quarantine                 ▼
       ▼                                   RECOVERING ──plan done──► HEALTHY
    SUSPECT ──signals clear──► HEALTHY

A RECOVERING node is back but its GPU caches are still refilling
(:class:`~repro.repair.restage.StagedRecovery`): the frontend sends it
reads only for shards the plan has already re-staged and keeps routing
the rest to replica owners.  An EJECTED node that heals with no recovery
attached (a breaker trip, not a cache loss) goes straight back to
HEALTHY.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.obs import get_registry
from repro.serve.breaker import BreakerState
from repro.utils.logging import get_logger

logger = get_logger("repair.watchdog")

__all__ = ["NodeState", "NodeWatchdog", "WatchdogConfig", "STATE_CODE"]


class NodeState(str, Enum):
    """Where a node sits in the heal lifecycle."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    EJECTED = "ejected"
    RECOVERING = "recovering"


#: Gauge encoding for ``repair.watchdog.state`` (one gauge per node).
STATE_CODE = {
    NodeState.HEALTHY: 0,
    NodeState.SUSPECT: 1,
    NodeState.EJECTED: 2,
    NodeState.RECOVERING: 3,
}


@dataclass(frozen=True)
class WatchdogConfig:
    """Fusion thresholds.

    Attributes:
        suspect_quarantine_depth: outstanding scrub quarantines at which
            a reachable node turns SUSPECT (it keeps serving — quarantined
            routes already point at HOST — but the state is surfaced).
    """

    suspect_quarantine_depth: int = 1

    def __post_init__(self) -> None:
        if self.suspect_quarantine_depth < 1:
            raise ValueError("suspect threshold must be at least 1")


@dataclass
class Transition:
    """One recorded lifecycle edge."""

    at: float
    node: int
    old: NodeState = field(default=NodeState.HEALTHY)
    new: NodeState = field(default=NodeState.HEALTHY)


class NodeWatchdog:
    """Per-node lifecycle state machine over fused health signals.

    Drive it with :meth:`observe` once per simulation step; attach a
    :class:`~repro.repair.restage.StagedRecovery` when a dead node's
    caches were dropped so the heal passes through RECOVERING.
    """

    def __init__(self, node_ids, config: WatchdogConfig | None = None) -> None:
        self.config = config or WatchdogConfig()
        self._states: dict[int, NodeState] = {
            int(n): NodeState.HEALTHY for n in node_ids
        }
        self._recoveries: dict[int, object] = {}
        self.transitions: list[Transition] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def state(self, node: int) -> NodeState:
        return self._states[node]

    def states(self) -> dict[int, NodeState]:
        return dict(self._states)

    def recovery(self, node: int):
        """The node's attached :class:`StagedRecovery`, if any."""
        return self._recoveries.get(node)

    def active_recoveries(self):
        """``(node, recovery)`` pairs for nodes currently RECOVERING."""
        return [
            (node, rec)
            for node, rec in sorted(self._recoveries.items())
            if self._states[node] is NodeState.RECOVERING and not rec.done
        ]

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def attach_recovery(self, node: int, recovery) -> None:
        """Register the staged refill a healed ``node`` must pass through."""
        self._recoveries[node] = recovery

    def observe(
        self,
        now: float,
        health,
        breaker_states: dict[int, BreakerState] | None = None,
        quarantine_depth: dict[int, int] | None = None,
    ) -> dict[int, NodeState]:
        """Advance every node's state from the fused signals at ``now``."""
        breaker_states = breaker_states or {}
        quarantine_depth = quarantine_depth or {}
        for node in sorted(self._states):
            old = self._states[node]
            new = self._next_state(
                node, old,
                reachable=health.node_reachable(node),
                breaker=breaker_states.get(node),
                depth=int(quarantine_depth.get(node, 0)),
            )
            if new is not old:
                self._states[node] = new
                self.transitions.append(
                    Transition(at=now, node=node, old=old, new=new)
                )
                logger.warning(
                    "watchdog: node %d %s -> %s at t=%.2f",
                    node, old.value, new.value, now,
                )
            reg = get_registry()
            if reg.enabled:
                reg.gauge("repair.watchdog.state", node=str(node)).set(
                    STATE_CODE[self._states[node]]
                )
        return self.states()

    def _next_state(
        self, node: int, old: NodeState, *, reachable: bool,
        breaker: BreakerState | None, depth: int,
    ) -> NodeState:
        if not reachable:
            return NodeState.EJECTED
        rec = self._recoveries.get(node)
        if old is NodeState.EJECTED:
            if rec is not None and not rec.done:
                return NodeState.RECOVERING
            return self._standing_state(breaker, depth)
        if old is NodeState.RECOVERING:
            if rec is not None and not rec.done:
                return NodeState.RECOVERING
            return self._standing_state(breaker, depth)
        return self._standing_state(breaker, depth)

    def _standing_state(
        self, breaker: BreakerState | None, depth: int
    ) -> NodeState:
        if breaker is BreakerState.OPEN:
            return NodeState.EJECTED
        if breaker is BreakerState.HALF_OPEN:
            return NodeState.SUSPECT
        if depth >= self.config.suspect_quarantine_depth:
            return NodeState.SUSPECT
        return NodeState.HEALTHY
