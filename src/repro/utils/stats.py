"""Small statistics helpers used across workloads and benchmarks."""

from __future__ import annotations

import numpy as np


def zipf_pmf(n: int, alpha: float) -> np.ndarray:
    """Probability mass of a (finite-support) Zipf distribution over ranks 1..n.

    This is the access skew model the paper uses for the SYN-A/SYN-B DLR
    datasets (``alpha`` = 1.2 / 1.4) and the Figure 4 synthetic trace.
    ``alpha`` = 0 degenerates to the uniform distribution.
    """
    if n <= 0:
        raise ValueError(f"support size must be positive, got {n}")
    if alpha < 0:
        raise ValueError(f"zipf exponent must be non-negative, got {alpha}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-alpha
    return weights / weights.sum()


def normalize(weights: np.ndarray) -> np.ndarray:
    """Normalize non-negative weights into a probability vector."""
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1:
        raise ValueError(f"expected 1-D weights, got shape {weights.shape}")
    if (weights < 0).any():
        raise ValueError("weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights must not all be zero")
    return weights / total


def geometric_mean(values) -> float:
    """Geometric mean, the paper's aggregation for 'average speedup' claims."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric mean of empty sequence")
    if (arr <= 0).any():
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.log(arr).mean()))


def weighted_percentile(values: np.ndarray, weights: np.ndarray, q: float) -> float:
    """Percentile ``q`` (0..100) of ``values`` under ``weights``.

    Raises :class:`ValueError` for empty inputs (there is no percentile
    of nothing — the old code crashed with ``IndexError`` on
    ``cdf[-1]``) and for weights summing to zero (the old code divided
    by zero and silently returned NaN-driven garbage).
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    values = np.asarray(values, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if values.shape != weights.shape:
        raise ValueError("values and weights must have identical shapes")
    if values.size == 0:
        raise ValueError("weighted percentile of empty values")
    order = np.argsort(values)
    values = values[order]
    cdf = np.cumsum(weights[order])
    total = cdf[-1]
    if total <= 0 or not np.isfinite(total):
        raise ValueError(
            f"weights must sum to a positive finite value, got {total}"
        )
    cdf /= total
    idx = int(np.searchsorted(cdf, q / 100.0, side="left"))
    idx = min(idx, len(values) - 1)
    return float(values[idx])


def coverage_curve(probabilities: np.ndarray) -> np.ndarray:
    """Cumulative probability covered by the top-k hottest items.

    ``coverage_curve(p)[k]`` is the hit rate of a size-``k`` cache holding
    the ``k`` most probable items — the quantity behind Figure 2(a).
    Index 0 is always 0 (empty cache).
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    ordered = np.sort(probabilities)[::-1]
    curve = np.concatenate([[0.0], np.cumsum(ordered)])
    # Floating-point drift in the running sum can push the tail above
    # 1.0 on large catalogs (~1e7 items), which downstream hit-rate math
    # would read as >100% hit rate; coverage is a probability, clamp it.
    return np.minimum(curve, 1.0)
