"""Lookahead prefetching: window, staging buffer, oracle cacher, soak."""

import math
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.extractor import FactoredExtractor
from repro.core.pipeline import shift_staged_demand
from repro.core.policy import hot_replicate_warm_partition_policy
from repro.core.prefetch import (
    LookaheadWindow,
    OracleCacher,
    PrefetchConfig,
    StagingBuffer,
)
from repro.hardware.platform import HOST, server_a
from repro.obs import MetricsRegistry, use_registry
from repro.obs.tracing import PIPELINE_STAGES
from repro.serve import ServingRuntime, SoakConfig, run_soak
from repro.sim.event_sim import simulate_prefetched_extraction
from repro.sim.mechanisms import GpuDemand
from repro.utils.rng import make_rng
from repro.utils.stats import zipf_pmf

pytestmark = [pytest.mark.serve, pytest.mark.prefetch]

N, D = 1200, 8


def _stack(replicate=0.5):
    platform = server_a()
    rng = make_rng(0)
    table = rng.standard_normal((N, D)).astype(np.float32)
    hotness = zipf_pmf(N, 1.1) * 1000
    placement = hot_replicate_warm_partition_policy(
        hotness, N // 8, platform.num_gpus, replicate
    )
    cache = MultiGpuEmbeddingCache(platform, table, placement)
    return platform, table, cache, FactoredExtractor(cache)


def _keys(n=256, seed=1):
    return make_rng(seed).integers(0, N, size=n)


class TestPrefetchConfig:
    def test_defaults(self):
        cfg = PrefetchConfig()
        assert cfg.lookahead == 4
        assert cfg.capacity_entries == 4096

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            PrefetchConfig(lookahead=-1)
        with pytest.raises(ValueError):
            PrefetchConfig(capacity_entries=0)

    def test_prefetch_stage_registered(self):
        assert "prefetch" in PIPELINE_STAGES


class TestLookaheadWindow:
    def test_window_exposes_at_most_k_batches(self):
        w = LookaheadWindow(2)
        for s in range(5):
            w.push(_keys(seed=s))
        assert len(w.window()) == 2
        assert len(w) == 5

    def test_union_is_unique_in_first_need_order(self):
        w = LookaheadWindow(3)
        w.push(np.array([5, 3, 5]))
        w.push(np.array([3, 7]))
        union = w.union()
        assert union.tolist() == [5, 3, 7]

    def test_advance_slides_fifo(self):
        w = LookaheadWindow(1)
        first, second = _keys(seed=1), _keys(seed=2)
        w.push(first)
        w.push(second)
        assert np.array_equal(w.advance(), first)
        assert np.array_equal(w.window()[0], second)
        w.advance()
        assert w.advance() is None

    def test_empty_union(self):
        assert LookaheadWindow(4).union().size == 0


class TestStagingBuffer:
    def _buffer(self, capacity=8):
        return StagingBuffer(0, N, capacity, entry_bytes=32)

    def test_stage_admits_prefix_up_to_capacity(self):
        buf = self._buffer(capacity=3)
        admitted = buf.stage(np.array([1, 2, 3, 4, 5]))
        assert admitted.tolist() == [1, 2, 3]
        assert buf.occupancy == 3
        assert buf.free == 0

    def test_hits_marked_and_counted(self):
        buf = self._buffer()
        buf.stage(np.array([1, 2]))
        mask = buf.record_hits(np.array([2, 9]))
        assert mask.tolist() == [True, False]
        assert buf.hits == 1

    def test_eviction_counts_unread_as_waste(self):
        buf = self._buffer()
        buf.stage(np.array([1, 2]))
        buf.record_hits(np.array([1]))
        evicted = buf.drain()
        assert evicted == 2
        # only the never-read entry (2) is waste
        assert buf.wasted_bytes == 32.0
        assert buf.occupancy == 0

    @given(
        batches=st.lists(
            st.lists(
                st.integers(min_value=0, max_value=N - 1),
                min_size=1,
                max_size=40,
                unique=True,
            ),
            min_size=1,
            max_size=12,
        ),
        capacity=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, batches, capacity):
        buf = StagingBuffer(0, N, capacity, entry_bytes=8)
        for batch in batches:
            keys = np.array(batch, dtype=np.int64)
            fresh = keys[~buf.staged_mask(keys)]
            buf.stage(fresh)
            assert 0 <= buf.occupancy <= capacity


class TestOracleCacher:
    def _cacher(self, lookahead=3, capacity=4096):
        _platform, _table, cache, _ex = _stack()
        return cache, OracleCacher(
            cache,
            PrefetchConfig(lookahead=lookahead, capacity_entries=capacity),
        )

    def test_staged_keys_are_upcoming_host_misses(self):
        cache, cacher = self._cacher()
        batches = [_keys(seed=s) for s in range(3)]
        for keys in batches:
            cacher.announce(0, keys)
        cacher.prefetch(0, idle_seconds=math.inf)
        window_keys = np.unique(np.concatenate(batches))
        staged = np.flatnonzero(cacher.buffer(0)._staged)
        # prefetched keys are a subset of the lookahead window's keys...
        assert np.isin(staged, window_keys).all()
        # ...and every one of them resolves to HOST for this GPU.
        assert (cache.source_map[0][staged] == HOST).all()

    @given(
        seeds=st.lists(st.integers(0, 50), min_size=1, max_size=6),
        lookahead=st.integers(1, 4),
        capacity=st.integers(1, 64),
    )
    @settings(max_examples=30, deadline=None)
    def test_prefetched_subset_of_window_and_bounded(
        self, seeds, lookahead, capacity
    ):
        _platform, _table, cache, _ex = _stack()
        cacher = OracleCacher(
            cache,
            PrefetchConfig(lookahead=lookahead, capacity_entries=capacity),
        )
        batches = [_keys(seed=s) for s in seeds]
        for keys in batches:
            cacher.announce(0, keys)
        cacher.prefetch(0, idle_seconds=math.inf)
        allowed = np.unique(np.concatenate(batches[:lookahead]))
        staged = np.flatnonzero(cacher.buffer(0)._staged)
        assert np.isin(staged, allowed).all()
        assert cacher.buffer(0).occupancy <= capacity

    def test_zero_idle_stages_nothing(self):
        _cache, cacher = self._cacher()
        cacher.announce(0, _keys(seed=1))
        outcome = cacher.prefetch(0, idle_seconds=0.0)
        assert outcome.staged_keys == 0
        assert outcome.cost_seconds == 0.0
        assert outcome.deferred_keys > 0

    def test_idle_budget_caps_staging(self):
        _cache, cacher = self._cacher()
        cacher.announce(0, _keys(n=512, seed=1))
        unbounded = cacher.prefetch(0, idle_seconds=math.inf).staged_keys
        _cache2, cacher2 = self._cacher()
        cacher2.announce(0, _keys(n=512, seed=1))
        tiny = cacher2._per_entry_cost(0) * 3
        bounded = cacher2.prefetch(0, idle_seconds=tiny).staged_keys
        assert bounded <= 3 < unbounded

    def test_overlap_never_exceeds_cost_or_idle(self):
        _cache, cacher = self._cacher()
        cacher.announce(0, _keys(seed=1))
        idle = 1e-7
        out = cacher.prefetch(0, idle_seconds=idle)
        assert out.overlapped_seconds <= min(idle, out.cost_seconds) + 1e-18
        assert out.critical_seconds == pytest.approx(
            max(0.0, out.cost_seconds - out.overlapped_seconds)
        )

    def test_hits_and_hit_rate(self):
        cache, cacher = self._cacher()
        keys = _keys(seed=1)
        cacher.announce(0, keys)
        cacher.prefetch(0, idle_seconds=math.inf)
        host_keys = keys[cache.source_map[0][keys] == HOST]
        mask = cacher.stage_hits(0, host_keys)
        assert mask.all()
        assert cacher.hits_total == len(host_keys)
        assert cacher.hit_rate == pytest.approx(1.0)

    def test_advance_evicts_outside_remaining_window(self):
        _cache, cacher = self._cacher(lookahead=1)
        cacher.announce(0, np.array([1, 2, 3]))
        cacher.announce(0, np.array([3, 4]))
        cacher.prefetch(0, idle_seconds=math.inf)
        cacher.advance(0)
        staged = np.flatnonzero(cacher.buffer(0)._staged)
        # only keys the remaining window still needs survive
        assert np.isin(staged, [3, 4]).all()

    def test_finalize_drains_everything(self):
        _cache, cacher = self._cacher()
        cacher.announce(0, _keys(seed=1))
        out = cacher.prefetch(0, idle_seconds=math.inf)
        cacher.finalize()
        assert cacher.buffer(0).occupancy == 0
        assert cacher.wasted_bytes_total == out.staged_bytes

    def test_lookahead_zero_is_inert(self):
        _cache, cacher = self._cacher(lookahead=0)
        cacher.announce(0, _keys(seed=1))
        out = cacher.prefetch(0, idle_seconds=math.inf)
        assert out.staged_keys == 0
        assert cacher.staged_keys_total == 0

    def test_rejects_negative_idle(self):
        _cache, cacher = self._cacher()
        with pytest.raises(ValueError):
            cacher.prefetch(0, idle_seconds=-1.0)

    def test_prefetch_metrics_emitted(self):
        registry = MetricsRegistry("prefetch-test")
        with use_registry(registry):
            _cache, cacher = self._cacher()
            cacher.announce(0, _keys(seed=1))
            out = cacher.prefetch(0, idle_seconds=math.inf)
        assert out.staged_keys > 0
        assert (
            registry.counter("serve.prefetch.staged_keys", gpu=0).value
            == out.staged_keys
        )
        assert registry.histogram("pipeline.prefetch.seconds").count == 1


class TestShiftStagedDemand:
    def test_moves_host_bytes_to_local(self):
        demand = GpuDemand(dst=0, volumes={HOST: 100.0, 0: 50.0})
        shifted = shift_staged_demand(demand, 40.0)
        assert shifted.volumes[HOST] == 60.0
        assert shifted.volumes[0] == 90.0
        assert shifted.total_bytes == demand.total_bytes

    def test_clamps_to_available_host_volume(self):
        demand = GpuDemand(dst=0, volumes={HOST: 100.0})
        shifted = shift_staged_demand(demand, 1000.0)
        assert HOST not in shifted.volumes
        assert shifted.volumes[0] == 100.0

    def test_noop_without_staging_or_host(self):
        demand = GpuDemand(dst=0, volumes={HOST: 100.0})
        assert shift_staged_demand(demand, 0.0) is demand
        local_only = GpuDemand(dst=0, volumes={0: 10.0})
        assert shift_staged_demand(local_only, 64.0) is local_only


class TestRuntimePrefetchIntegration:
    def test_staged_hits_make_service_faster(self):
        _platform, _table, cache, extractor = _stack()
        keys = _keys(seed=1)
        baseline = ServingRuntime(extractor)
        req = baseline.make_request(0, keys, now=0.0)
        slow = baseline.serve_request(req, now=0.0)

        cacher = OracleCacher(cache, PrefetchConfig(lookahead=2))
        runtime = ServingRuntime(extractor, prefetcher=cacher)
        cacher.announce(0, keys)
        cacher.prefetch(0, idle_seconds=math.inf)
        req2 = runtime.make_request(0, keys, now=0.0)
        fast = runtime.serve_request(req2, now=0.0)
        assert fast.prefetch_hits > 0
        assert fast.service_time < slow.service_time
        assert np.array_equal(fast.values, slow.values)

    def test_no_prefetcher_reports_zero_hits(self):
        _platform, _table, _cache, extractor = _stack()
        runtime = ServingRuntime(extractor)
        response = runtime.serve_request(
            runtime.make_request(0, _keys(seed=1), now=0.0), now=0.0
        )
        assert response.prefetch_hits == 0

    def test_runtime_retires_window_per_request(self):
        _platform, _table, cache, extractor = _stack()
        cacher = OracleCacher(cache, PrefetchConfig(lookahead=2))
        runtime = ServingRuntime(extractor, prefetcher=cacher)
        for s in range(3):
            cacher.announce(0, _keys(seed=s))
        runtime.serve_request(
            runtime.make_request(0, _keys(seed=0), now=0.0), now=0.0
        )
        assert len(cacher.window(0)) == 2


class TestPrefetchedEventSim:
    def _demand(self):
        return GpuDemand(dst=0, volumes={HOST: 4 * 2**20, 0: 2**20, 1: 2**20})

    def test_shifted_never_slower_than_baseline(self):
        platform = server_a()
        result = simulate_prefetched_extraction(
            platform, self._demand(), staged_bytes=2 * 2**20,
            idle_seconds=math.inf,
        )
        assert result.shifted_time <= result.baseline_time
        assert result.speedup >= 1.0

    def test_no_idle_pays_transfer_up_front(self):
        platform = server_a()
        result = simulate_prefetched_extraction(
            platform, self._demand(), staged_bytes=2 * 2**20, idle_seconds=0.0
        )
        assert result.overlapped_seconds == 0.0
        assert result.critical_seconds == pytest.approx(result.prefetch_time)
        assert result.total_time == pytest.approx(
            result.prefetch_time + result.shifted_time
        )

    def test_zero_staged_is_baseline(self):
        platform = server_a()
        result = simulate_prefetched_extraction(
            platform, self._demand(), staged_bytes=0.0
        )
        assert result.total_time == result.baseline_time
        assert result.prefetch_time == 0.0

    def test_staging_clamped_to_host_volume(self):
        platform = server_a()
        result = simulate_prefetched_extraction(
            platform, self._demand(), staged_bytes=1e12,
            idle_seconds=math.inf,
        )
        # all host volume shifted: the shifted run has no host group left
        assert result.shifted_time < result.baseline_time

    def test_rejects_bad_args(self):
        platform = server_a()
        with pytest.raises(ValueError):
            simulate_prefetched_extraction(
                platform, self._demand(), staged_bytes=-1.0
            )
        with pytest.raises(ValueError):
            simulate_prefetched_extraction(
                platform, self._demand(), staged_bytes=1.0, idle_seconds=-1.0
            )


class TestSoakLookahead:
    CFG = dict(scenario="steady", load=0.8, requests_per_gpu=60)

    def test_lookahead_zero_matches_no_prefetch_path_exactly(self):
        off = run_soak(SoakConfig.quick(**self.CFG))
        zero = run_soak(SoakConfig.quick(**self.CFG, lookahead=0))
        assert off.to_dict() == zero.to_dict()

    def test_lookahead_beats_no_lookahead_on_skewed_trace(self):
        base = SoakConfig.quick(**self.CFG)
        r0 = run_soak(base)
        r4 = run_soak(replace(base, lookahead=4))
        # same offered trace...
        assert r4.requests == r0.requests
        assert r4.arrival_rate == r0.arrival_rate
        # ...strictly better serving
        assert r4.goodput_rps > r0.goodput_rps
        assert r4.prefetch_hit_rate > r0.prefetch_hit_rate == 0.0
        assert r4.prefetch_hits > 0

    def test_workers_pool_also_prefetches(self):
        base = SoakConfig.quick(**self.CFG)
        r0 = run_soak(replace(base, workers=4))
        r4 = run_soak(replace(base, workers=4, lookahead=4))
        assert r4.goodput_rps > r0.goodput_rps
        assert r4.prefetch_hit_rate > 0.0

    def test_report_carries_prefetch_fields(self):
        report = run_soak(
            SoakConfig.quick(**self.CFG, lookahead=2, prefetch_capacity=512)
        )
        doc = report.to_dict()
        assert doc["lookahead"] == 2
        assert doc["prefetch_staged_keys"] > 0
        assert 0.0 <= doc["prefetch_hit_rate"] <= 1.0
        assert doc["prefetch_overlap_seconds"] >= 0.0

    def test_closed_loop_rejects_lookahead(self):
        with pytest.raises(ValueError, match="open-loop"):
            SoakConfig(closed_loop=True, lookahead=2)

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            SoakConfig(lookahead=-1)
        with pytest.raises(ValueError):
            SoakConfig(prefetch_capacity=0)
