"""PyTorch-style integration (§7.1): UGache as a drop-in ``nn.Module``.

PyTorch itself is unavailable offline, so this module provides the same
*calling convention* — a ``Module`` with ``forward`` invoked via
``__call__``, mirroring ``torch.nn.Embedding``'s shape contract — over
numpy arrays.  Applications written against this surface port to the real
binding by swapping the import.
"""

from __future__ import annotations

import numpy as np

from repro.core.embedding_layer import EmbeddingLayerConfig, UGacheEmbeddingLayer
from repro.hardware.platform import Platform


class Module:
    """Minimal ``nn.Module`` look-alike: ``__call__`` dispatches to ``forward``."""

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class UGacheEmbedding(Module):
    """Drop-in replacement for ``nn.Embedding`` backed by the unified cache.

    Shape contract matches ``nn.Embedding``: input of any integer shape
    ``(...,)`` yields output ``(..., embedding_dim)``.

    Example::

        emb = UGacheEmbedding(platform, weight, hotness, cache_ratio=0.1)
        out = emb(keys, device=0)            # like nn.Embedding on GPU 0
    """

    def __init__(
        self,
        platform: Platform,
        weight: np.ndarray,
        hotness: np.ndarray,
        cache_ratio: float | None = None,
        capacity_entries: int | None = None,
    ) -> None:
        self._layer = UGacheEmbeddingLayer(
            platform,
            weight,
            hotness,
            EmbeddingLayerConfig(
                cache_ratio=cache_ratio, capacity_entries=capacity_entries
            ),
        )

    @property
    def num_embeddings(self) -> int:
        return self._layer.cache.num_entries

    @property
    def embedding_dim(self) -> int:
        return self._layer.cache.dim

    @property
    def layer(self) -> UGacheEmbeddingLayer:
        """The underlying UGache embedding layer (for stats/refresh)."""
        return self._layer

    def forward(self, keys: np.ndarray, device: int = 0) -> np.ndarray:
        keys = np.asarray(keys)
        flat = keys.reshape(-1)
        values = self._layer.lookup(device, flat)
        return values.reshape(*keys.shape, self.embedding_dim)
