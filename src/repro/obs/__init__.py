"""Observability: metrics registry, tracing spans, and exporters.

The instrumentation spine of the runtime (the accounting UGache's own
evaluation is built on — per-source hit splits, per-GPU extraction
timings, solver wall times).  Everything is process-local, stdlib-only
and default-on; see ``README.md``'s Observability section for how the
hot paths use it and how to capture an artifact with ``--metrics-out``.

Quick use::

    from repro.obs import get_registry, timer

    reg = get_registry()
    reg.counter("cache.lookup.keys", source="local").inc(128)
    with timer("solver.solve.seconds"):
        ...
    reg.snapshot()  # JSON-able document
"""

from repro.obs.export import (
    load_metrics,
    summarize,
    to_prometheus_text,
    write_json,
    write_jsonl,
)
from repro.obs.metrics import (
    BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.tracing import (
    PIPELINE_STAGES,
    SpanRecord,
    span,
    stage_timer,
    timer,
)

__all__ = [
    "BUCKET_BOUNDS",
    "PIPELINE_STAGES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "get_registry",
    "load_metrics",
    "set_registry",
    "span",
    "stage_timer",
    "summarize",
    "timer",
    "to_prometheus_text",
    "use_registry",
    "write_json",
    "write_jsonl",
]
