"""Workload replay runner."""

import numpy as np
import pytest

from repro.bench.runner import ReplayStats, replay_functional, replay_workload
from repro.core.cache import MultiGpuEmbeddingCache
from repro.core.policy import partition_policy, replication_policy
from repro.sim.mechanisms import Mechanism
from repro.utils.stats import zipf_pmf

N, D = 2000, 8


def _batches(rng, probs, num_gpus=4, batch=200):
    while True:
        yield [rng.choice(N, size=batch, p=probs) for _ in range(num_gpus)]


@pytest.fixture
def probs():
    return zipf_pmf(N, 1.2)


@pytest.fixture
def placement(probs):
    return partition_policy(probs * 1000, 200, 4)


class TestReplayWorkload:
    def test_iteration_cap(self, platform_a, placement, probs, rng):
        stats = replay_workload(
            platform_a, placement, _batches(rng, probs), 32, max_iterations=5
        )
        assert stats.iterations == 5
        assert len(stats.times) == 5

    def test_fractions_sum_to_one(self, platform_a, placement, probs, rng):
        stats = replay_workload(
            platform_a, placement, _batches(rng, probs), 32, max_iterations=3
        )
        total = stats.local_fraction + stats.remote_fraction + stats.host_fraction
        assert total == pytest.approx(1.0)

    def test_percentiles_ordered(self, platform_a, placement, probs, rng):
        stats = replay_workload(
            platform_a, placement, _batches(rng, probs), 32, max_iterations=10
        )
        assert stats.p50_time <= stats.p99_time
        assert stats.times.min() <= stats.mean_time <= stats.times.max()

    def test_mechanism_affects_replay(self, platform_a, placement, probs, rng):
        fem = replay_workload(
            platform_a, placement, _batches(np.random.default_rng(0), probs), 32,
            Mechanism.FACTORED, max_iterations=4,
        )
        naive = replay_workload(
            platform_a, placement, _batches(np.random.default_rng(0), probs), 32,
            Mechanism.PEER_NAIVE, max_iterations=4,
        )
        assert naive.mean_time > fem.mean_time

    def test_finite_stream(self, platform_a, placement, probs, rng):
        finite = [next(_batches(rng, probs)) for _ in range(3)]
        stats = replay_workload(platform_a, placement, finite, 32)
        assert stats.iterations == 3

    def test_empty_stream(self, platform_a, placement):
        stats = replay_workload(platform_a, placement, [], 32)
        assert stats.iterations == 0
        assert stats.mean_time == 0.0


class TestReplayFunctional:
    def test_exactness_checked(self, platform_a, small_table, skewed_hotness, rng, probs):
        cache = MultiGpuEmbeddingCache(
            platform_a, small_table, replication_policy(skewed_hotness, 300, 4)
        )
        stats = replay_functional(
            cache, small_table, _batches(rng, probs), max_iterations=3
        )
        assert stats.iterations == 3

    def test_detects_corruption(self, platform_a, small_table, skewed_hotness, rng, probs):
        cache = MultiGpuEmbeddingCache(
            platform_a, small_table, replication_policy(skewed_hotness, 300, 4)
        )
        wrong_table = small_table + 1.0
        with pytest.raises(AssertionError, match="diverge"):
            replay_functional(
                cache, wrong_table, _batches(rng, probs), max_iterations=1
            )


class TestReplayStats:
    def test_empty_stats(self):
        stats = ReplayStats(
            iterations=0, times=np.array([]), local_fraction=0,
            remote_fraction=0, host_fraction=0,
        )
        assert stats.mean_time == 0.0
        assert stats.p50_time == 0.0
        assert stats.stdev_time == 0.0
