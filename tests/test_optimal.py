"""Per-entry optimal reference and approximation gap (Figure 16)."""

import numpy as np
import pytest

from repro.core.optimal import MAX_OPTIMAL_ENTRIES, approximation_gap, solve_optimal
from repro.core.solver import solve_policy
from repro.utils.stats import zipf_pmf


@pytest.fixture
def hot300():
    return zipf_pmf(300, 1.2) * 1000


class TestSolveOptimal:
    def test_refuses_large_universe(self, platform_a):
        hot = np.ones(MAX_OPTIMAL_ENTRIES + 1)
        with pytest.raises(ValueError, match="reduce the dataset"):
            solve_optimal(platform_a, hot, 10, 512)

    def test_per_entry_granularity(self, platform_a, hot300):
        solved = solve_optimal(platform_a, hot300, 30, 512)
        assert solved.blocks.num_blocks == 300

    def test_optimal_no_worse_than_blocked(self, platform_a, hot300):
        optimal = solve_optimal(platform_a, hot300, 30, 512)
        blocked = solve_policy(platform_a, hot300, 30, 512)
        # Per-entry relaxation lower-bounds the blocked estimate.
        assert optimal.est_time <= blocked.est_time * (1 + 1e-6)

    def test_blocked_gap_is_small(self, platform_a, hot300):
        # §6.3 claims <2% average; allow some slack on tiny instances.
        optimal = solve_optimal(platform_a, hot300, 30, 512)
        blocked = solve_policy(platform_a, hot300, 30, 512)
        assert approximation_gap(blocked, optimal) < 0.10

    def test_capacity_respected(self, platform_a, hot300):
        solved = solve_optimal(platform_a, hot300, 30, 512)
        solved.realize().validate_capacity(30)


class TestApproximationGap:
    def test_zero_for_identical(self, platform_a, hot300):
        solved = solve_optimal(platform_a, hot300, 30, 512)
        assert approximation_gap(solved, solved) == pytest.approx(0.0)

    def test_zero_optimal_time(self, platform_a, hot300):
        import dataclasses

        solved = solve_optimal(platform_a, hot300, 30, 512)
        degenerate = dataclasses.replace(solved, est_time=0.0)
        assert approximation_gap(solved, degenerate) == 0.0
