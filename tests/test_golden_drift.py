"""Golden regression for the drift-adaptation loop.

``tests/golden/drift_golden.json`` pins the whole online loop on the
seeded rotating-Zipf quick trace: the detector tape (scores and fire
points), the detect → re-solve → swap event sequence, and the adapt-off
run of the same trace.  Any change to the estimator decay, detector
floors, warm-start rung, or swap guardrails shows up here first — and
must be a deliberate regeneration, not a drive-by.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

pytestmark = pytest.mark.drift


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "generate_drift_golden", GOLDEN_DIR / "generate_drift_golden.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads((GOLDEN_DIR / "drift_golden.json").read_text())


@pytest.fixture(scope="module")
def replayed() -> dict:
    # Round-trip through JSON so float representation matches the fixture.
    return json.loads(json.dumps(_load_generator().build(), sort_keys=True))


def test_schedules_are_pinned(golden, replayed):
    assert replayed["schedules"] == golden["schedules"]


@pytest.mark.parametrize("run", ["adapt_on", "adapt_off"])
def test_soak_reports_are_byte_identical(golden, replayed, run):
    pinned, got = golden[run], replayed[run]
    diverged = {
        key: {"pinned": pinned[key], "got": got.get(key, "<missing>")}
        for key in pinned
        if got.get(key, "<missing>") != pinned[key]
    }
    assert not diverged, f"{run} drift soak diverged from the pin: {diverged}"


def test_pinned_loop_exercised_every_stage(golden):
    """The fixture itself must witness the full loop — a regeneration
    that quietly stops detecting or swapping is a regression even if
    it is internally consistent."""
    on = golden["adapt_on"]
    assert on["drift_detections"] >= 1
    assert on["adapt_incremental_resolves"] >= 1
    assert on["adapt_swaps_landed"] >= 1
    assert on["adapt_rollbacks"] == 0
    kinds = [e["kind"] for e in on["adapt_events"]]
    assert kinds[:3] == ["detect", "resolve", "swap"]
    fires = [s for s in on["drift_tape"] if s["fired"]]
    assert len(fires) == on["drift_detections"]
    # adaptation pays: transition-window goodput beats adapt-off.
    assert (
        on["transition_goodput_ratio"]
        > golden["adapt_off"]["transition_goodput_ratio"]
    )


def test_adapt_off_records_nothing(golden):
    off = golden["adapt_off"]
    assert not off["adapt_enabled"]
    assert off["drift_detections"] == 0
    assert off["adapt_events"] == [] and off["drift_tape"] == []
