"""Online serving runtime over the multi-GPU embedding cache.

Admission control with bounded per-GPU queues and configurable
backpressure, SLO-aware load shedding, per-source circuit breakers wired
into the extractor's degraded-mode routing, deadline hedging to host
DRAM, hot policy swap with guardrail-driven rollback, and a chaos soak
harness — everything runs on a simulated clock so sustained-load runs
are deterministic and CI-sized.
"""

from repro.serve.breaker import (
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)
from repro.serve.coalesce import (
    BatchingMode,
    CoalesceConfig,
    CoalesceOutcome,
    MicroBatcher,
    coalesce_keys,
)
from repro.serve.adaptation import (
    AdaptationConfig,
    AdaptationEvent,
    DriftAdapter,
)
from repro.serve.policy_manager import (
    PolicyGeneration,
    PolicyManager,
    SwapGuardrail,
    SwapReport,
)
from repro.serve.queueing import (
    AdmissionConfig,
    AdmissionController,
    AdmissionResult,
    BoundedRequestQueue,
    LatencyEstimator,
    QueuePolicy,
)
from repro.serve.request import Request, RequestStatus, Response, SimClock
from repro.serve.runtime import ServeConfig, ServingRuntime
from repro.serve.workers import GpuWorkerPool
from repro.serve.soak import (
    SOAK_SCENARIOS,
    SoakConfig,
    SoakReport,
    build_soak_plan,
    render_soak_report,
    run_soak,
)

__all__ = [
    "SOAK_SCENARIOS",
    "AdaptationConfig",
    "AdaptationEvent",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionResult",
    "BatchingMode",
    "BoundedRequestQueue",
    "BreakerBoard",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "CoalesceConfig",
    "CoalesceOutcome",
    "DriftAdapter",
    "GpuWorkerPool",
    "LatencyEstimator",
    "MicroBatcher",
    "PolicyGeneration",
    "PolicyManager",
    "QueuePolicy",
    "Request",
    "RequestStatus",
    "Response",
    "ServeConfig",
    "ServingRuntime",
    "SimClock",
    "SoakConfig",
    "SoakReport",
    "SwapGuardrail",
    "SwapReport",
    "build_soak_plan",
    "coalesce_keys",
    "render_soak_report",
    "run_soak",
]
