"""Retry/backoff/deadline helpers behind the solver fallback chain."""

import pytest

from repro.utils.retry import Deadline, RetriesExhausted, RetryPolicy, retry_call


class FakeClock:
    """Injectable monotonic clock; sleeps advance it."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


class TestRetryPolicy:
    def test_delays_grow_and_cap(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0, max_delay=0.3
        )
        assert list(policy.delays()) == pytest.approx([0.1, 0.2, 0.3, 0.3])

    def test_single_attempt_has_no_delays(self):
        assert list(RetryPolicy(max_attempts=1).delays()) == []

    def test_jitter_is_seeded_and_bounded(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.5, seed=7)
        first = list(policy.delays())
        second = list(policy.delays())
        assert first == second  # deterministic
        plain = list(RetryPolicy(max_attempts=4, base_delay=0.1).delays())
        for jittered, base in zip(first, plain):
            assert 0.5 * base <= jittered <= 1.5 * base

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)


class TestDeadline:
    def test_remaining_counts_down(self):
        clock = FakeClock()
        deadline = Deadline.after(5.0, clock=clock)
        assert deadline.remaining() == pytest.approx(5.0)
        clock.sleep(3.0)
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired
        clock.sleep(2.5)
        assert deadline.remaining() == 0.0
        assert deadline.expired

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Deadline.after(-1.0)


class TestRetryCall:
    def test_succeeds_first_try(self):
        calls = []
        assert retry_call(lambda: calls.append(1) or "ok") == "ok"
        assert len(calls) == 1

    def test_retries_until_success(self):
        clock = FakeClock()
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise RuntimeError("transient")
            return attempts["n"]

        result = retry_call(
            flaky,
            policy=RetryPolicy(max_attempts=3, base_delay=0.1),
            sleep=clock.sleep,
        )
        assert result == 3
        assert clock.now == pytest.approx(0.1 + 0.2)  # slept the schedule

    def test_exhaustion_chains_last_error(self):
        def always():
            raise KeyError("nope")

        with pytest.raises(RetriesExhausted) as info:
            retry_call(
                always,
                policy=RetryPolicy(max_attempts=2, base_delay=0.0),
                sleep=lambda s: None,
            )
        assert isinstance(info.value.__cause__, KeyError)

    def test_unlisted_exception_propagates_immediately(self):
        calls = {"n": 0}

        def typed():
            calls["n"] += 1
            raise ValueError("fatal")

        with pytest.raises(ValueError):
            retry_call(
                typed,
                policy=RetryPolicy(max_attempts=5, base_delay=0.0),
                retry_on=(KeyError,),
                sleep=lambda s: None,
            )
        assert calls["n"] == 1

    def test_deadline_stops_retries(self):
        clock = FakeClock()
        deadline = Deadline.after(0.15, clock=clock)
        calls = {"n": 0}

        def always():
            calls["n"] += 1
            raise RuntimeError("down")

        with pytest.raises(RetriesExhausted):
            retry_call(
                always,
                policy=RetryPolicy(max_attempts=10, base_delay=0.1),
                sleep=clock.sleep,
                deadline=deadline,
            )
        assert calls["n"] < 10  # the budget cut the schedule short

    def test_on_retry_observer(self):
        seen = []

        def always():
            raise RuntimeError("x")

        with pytest.raises(RetriesExhausted):
            retry_call(
                always,
                policy=RetryPolicy(max_attempts=3, base_delay=0.0),
                sleep=lambda s: None,
                on_retry=lambda attempt, exc: seen.append(attempt),
            )
        assert seen == [1, 2, 3]


class TestExplicitJitterRng:
    def test_explicit_seed_reproduces_schedule(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.5, seed=7)
        assert list(policy.delays(rng=123)) == list(policy.delays(rng=123))
        # an explicit rng overrides the policy's own seed
        assert list(policy.delays(rng=123)) != list(policy.delays())

    def test_shared_generator_advances_across_schedules(self):
        from repro.utils.rng import make_rng

        policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.5)
        rng = make_rng(9)
        first = list(policy.delays(rng=rng))
        second = list(policy.delays(rng=rng))  # same generator, consumed on
        assert first != second
        replay = make_rng(9)
        assert list(policy.delays(rng=replay)) == first

    def test_none_falls_back_to_policy_seed(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.5, seed=7)
        assert list(policy.delays(rng=None)) == list(policy.delays())

    def test_retry_call_threads_rng_to_backoff(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.8, seed=0)
        runs = []
        for _ in range(2):
            slept = []
            with pytest.raises(RetriesExhausted):
                retry_call(
                    lambda: (_ for _ in ()).throw(ValueError("boom")),
                    policy=policy,
                    sleep=slept.append,
                    rng=42,
                )
            runs.append(tuple(slept))
        assert runs[0] == runs[1]
        assert runs[0] == tuple(policy.delays(rng=42))
